package server

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"sort"

	"scoded/internal/detect"
	"scoded/internal/drilldown"
	"scoded/internal/kernel"
	"scoded/internal/relation"
	"scoded/internal/sc"
	"scoded/internal/stats"
	"scoded/internal/store"
)

// checkParams are the detection knobs shared by /v1/check and /v1/checkall.
type checkParams struct {
	// Method names a detect.Method: auto, g-test, kendall, pearson,
	// spearman, exact-g, exact-kendall. Empty means auto.
	Method string `json:"method,omitempty"`
	// Bins is the quantile bin count for discretizing numeric columns.
	Bins int `json:"bins,omitempty"`
	// MinStratumSize drops smaller conditioning strata.
	MinStratumSize int `json:"min_stratum_size,omitempty"`
	// AutoExact re-runs approximate tests with their Monte-Carlo variant.
	AutoExact bool `json:"auto_exact,omitempty"`
}

func (p checkParams) options() (detect.Options, error) {
	m, err := parseMethod(p.Method)
	if err != nil {
		return detect.Options{}, err
	}
	return detect.Options{
		Method:         m,
		Bins:           p.Bins,
		MinStratumSize: p.MinStratumSize,
		AutoExact:      p.AutoExact,
	}, nil
}

func parseMethod(name string) (detect.Method, error) {
	switch name {
	case "", "auto":
		return detect.Auto, nil
	case "g", "g-test":
		return detect.G, nil
	case "kendall":
		return detect.Kendall, nil
	case "pearson":
		return detect.Pearson, nil
	case "spearman":
		return detect.Spearman, nil
	case "exact-g":
		return detect.ExactG, nil
	case "exact-kendall":
		return detect.ExactKendall, nil
	default:
		return 0, fmt.Errorf("unknown method %q", name)
	}
}

// resolveConstraint returns the constraint for a request that may carry
// either inline text or a registry id.
func (s *Server) resolveConstraint(text string, id int) (sc.Approximate, error) {
	switch {
	case text != "" && id != 0:
		return sc.Approximate{}, fmt.Errorf("give either constraint text or constraint_id, not both")
	case text != "":
		return sc.ParseApproximate(text)
	case id != 0:
		s.mu.RLock()
		a, ok := s.constraints[id]
		s.mu.RUnlock()
		if !ok {
			return sc.Approximate{}, fmt.Errorf("no constraint %d", id)
		}
		return a, nil
	default:
		return sc.Approximate{}, fmt.Errorf("missing constraint (text) or constraint_id")
	}
}

// testJSON renders a stats.TestResult.
type testJSON struct {
	Statistic   float64 `json:"statistic"`
	DF          int     `json:"df,omitempty"`
	P           float64 `json:"p"`
	N           int     `json:"n"`
	Approximate bool    `json:"approximate,omitempty"`
}

func testJSONOf(t stats.TestResult) testJSON {
	return testJSON{Statistic: t.Statistic, DF: t.DF, P: t.P, N: t.N, Approximate: t.Approximate}
}

// checkResultJSON renders a detect.Result.
type checkResultJSON struct {
	Constraint string            `json:"constraint"`
	Alpha      float64           `json:"alpha"`
	Method     string            `json:"method,omitempty"`
	Test       testJSON          `json:"test"`
	Violated   bool              `json:"violated"`
	Strata     []stratumJSON     `json:"strata,omitempty"`
	Leaves     []checkResultJSON `json:"leaves,omitempty"`
	Error      string            `json:"error,omitempty"`
}

type stratumJSON struct {
	Key     string   `json:"key"`
	Size    int      `json:"size"`
	Test    testJSON `json:"test"`
	Skipped bool     `json:"skipped,omitempty"`
}

func checkResultJSONOf(r detect.Result) checkResultJSON {
	out := checkResultJSON{
		Constraint: r.Constraint.SC.String(),
		Alpha:      r.Constraint.Alpha,
		Violated:   r.Violated,
	}
	if r.Err != nil {
		out.Error = r.Err.Error()
		return out
	}
	out.Method = r.Method.String()
	out.Test = testJSONOf(r.Test)
	for _, st := range r.Strata {
		out.Strata = append(out.Strata, stratumJSON{
			Key: st.Key, Size: st.Size, Test: testJSONOf(st.Test), Skipped: st.Skipped,
		})
	}
	for _, leaf := range r.Leaves {
		out.Leaves = append(out.Leaves, checkResultJSONOf(leaf))
	}
	return out
}

// acquireForRequest resolves and (if cold) materializes a dataset for one
// request, writing the error response itself on failure. On success the
// caller must invoke the returned release once done with the relation.
func (s *Server) acquireForRequest(w http.ResponseWriter, r *http.Request, name string) (*relation.Relation, *kernel.Cache, func(), bool) {
	rel, cache, release, err := s.acquireDataset(r.Context(), name)
	switch {
	case err == nil:
		return rel, cache, release, true
	case errors.Is(err, errNoDataset):
		writeError(w, http.StatusNotFound, "no dataset %q", name)
	case r.Context().Err() != nil:
		writeError(w, errStatus(r.Context().Err()), "%v", err)
	default:
		writeError(w, http.StatusInternalServerError, "%v", err)
	}
	return nil, nil, nil, false
}

// handleCheck runs one constraint against one dataset.
func (s *Server) handleCheck(w http.ResponseWriter, r *http.Request) {
	var req struct {
		Dataset      string `json:"dataset"`
		Constraint   string `json:"constraint,omitempty"`
		ConstraintID int    `json:"constraint_id,omitempty"`
		checkParams
	}
	if err := decodeJSON(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	rel, cache, release, ok := s.acquireForRequest(w, r, req.Dataset)
	if !ok {
		return
	}
	defer release()
	a, err := s.resolveConstraint(req.Constraint, req.ConstraintID)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	opts, err := req.options()
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	opts.Cache = cache
	res, err := detect.CheckContext(r.Context(), rel, a, opts)
	if err != nil {
		writeError(w, errStatus(err), "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, checkResultJSONOf(res))
}

// handleCheckAll runs a constraint family against one dataset with
// optional BH-FDR control, fanned out over detect.CheckAll's worker pool.
// An empty constraint_ids list means every registered constraint.
//
// The statistics source is chosen per request: a cold store-backed dataset
// whose on-disk size exceeds the whole resident budget is checked by
// detect.CheckAllStream — segment-streamed sufficient statistics, never
// materializing the rows — when the requested method is stream-eligible;
// everything else materializes (lazily) and runs the resident pool path.
// The results are bit-identical either way. The optional "source" field
// ("auto", "resident", "stream") overrides the choice.
func (s *Server) handleCheckAll(w http.ResponseWriter, r *http.Request) {
	var req struct {
		Dataset       string   `json:"dataset"`
		ConstraintIDs []int    `json:"constraint_ids,omitempty"`
		Constraints   []string `json:"constraints,omitempty"`
		FDR           float64  `json:"fdr,omitempty"`
		Workers       int      `json:"workers,omitempty"`
		Source        string   `json:"source,omitempty"`
		checkParams
	}
	if err := decodeJSON(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	s.mu.RLock()
	d, ok := s.datasets[req.Dataset]
	var stored, resident bool
	var diskBytes int64
	if ok {
		stored, resident, diskBytes = d.stored, d.rel != nil, d.diskBytes
	}
	s.mu.RUnlock()
	if !ok {
		writeError(w, http.StatusNotFound, "no dataset %q", req.Dataset)
		return
	}
	var family []sc.Approximate
	switch {
	case len(req.Constraints) > 0 && len(req.ConstraintIDs) > 0:
		writeError(w, http.StatusBadRequest, "give either constraints or constraint_ids, not both")
		return
	case len(req.Constraints) > 0:
		for _, text := range req.Constraints {
			a, err := sc.ParseApproximate(text)
			if err != nil {
				writeError(w, http.StatusBadRequest, "parsing constraint %q: %v", text, err)
				return
			}
			family = append(family, a)
		}
	case len(req.ConstraintIDs) > 0:
		for _, id := range req.ConstraintIDs {
			a, err := s.resolveConstraint("", id)
			if err != nil {
				writeError(w, http.StatusNotFound, "%v", err)
				return
			}
			family = append(family, a)
		}
	default:
		// The whole registry, in id order.
		s.mu.RLock()
		ids := make([]int, 0, len(s.constraints))
		for id := range s.constraints {
			ids = append(ids, id)
		}
		s.mu.RUnlock()
		sort.Ints(ids)
		for _, id := range ids {
			if a, err := s.resolveConstraint("", id); err == nil {
				family = append(family, a)
			}
		}
	}
	opts, err := req.options()
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	stream, err := s.chooseStream(req.Source, stored, resident, diskBytes, opts)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if stream {
		s.checkAllStream(w, r, req.Dataset, family, opts, req.FDR)
		return
	}
	rel, cache, release, ok := s.acquireForRequest(w, r, req.Dataset)
	if !ok {
		return
	}
	defer release()
	opts.Cache = cache
	workers := req.Workers
	if workers <= 0 {
		workers = s.opts.Workers
	}
	results, err := detect.CheckAllContext(r.Context(), rel, family, detect.BatchOptions{
		Options: opts,
		FDR:     req.FDR,
		Workers: workers,
		Hooks:   s.metrics.engineHooks("checkall"),
	})
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	writeCheckAllResults(w, r, results)
}

// chooseStream decides the checkall statistics source. Auto streams only
// when it must: the dataset is cold and store-backed, its on-disk size
// exceeds the whole resident budget (so materializing it would defeat the
// budget), and the requested method has a streaming implementation.
func (s *Server) chooseStream(source string, stored, resident bool, diskBytes int64, opts detect.Options) (bool, error) {
	switch source {
	case "resident":
		return false, nil
	case "stream":
		if s.store == nil || !stored {
			return false, fmt.Errorf("source \"stream\" needs a store-backed dataset")
		}
		if !detect.StreamEligible(opts) {
			return false, fmt.Errorf("method %q is not stream-eligible (want auto, g-test or kendall without auto_exact)", opts.Method)
		}
		return true, nil
	case "", "auto":
		return stored && !resident && s.res.budget > 0 && diskBytes > s.res.budget &&
			detect.StreamEligible(opts), nil
	default:
		return false, fmt.Errorf("unknown source %q (want auto, resident or stream)", source)
	}
}

// checkAllStream runs the family through detect.CheckAllStream over store
// segment chunks, bounded by Options.ScanWindowRows, without materializing
// the dataset.
func (s *Server) checkAllStream(w http.ResponseWriter, r *http.Request, name string, family []sc.Approximate, opts detect.Options, fdr float64) {
	m, err := s.store.Manifest(name)
	if err != nil {
		writeError(w, http.StatusInternalServerError, "reading manifest for %q: %v", name, err)
		return
	}
	cols := make([]kernel.StreamColumn, len(m.Schema))
	for i, c := range m.Schema {
		kind := relation.Numeric
		if c.Kind == store.ColKindCategorical {
			kind = relation.Categorical
		}
		cols[i] = kernel.StreamColumn{Name: c.Name, Kind: kind}
	}
	streamer, err := kernel.NewStreamer(kernel.StreamSource{
		Columns: cols,
		Rows:    m.Rows,
		Scan: func(ctx context.Context, fn func(*store.Segment) error) error {
			return s.store.ScanChunks(ctx, name, s.opts.ScanWindowRows, fn)
		},
	})
	if err != nil {
		writeError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	results, err := detect.CheckAllStream(r.Context(), streamer, family, detect.BatchOptions{
		Options: opts,
		FDR:     fdr,
	})
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	writeCheckAllResults(w, r, results)
}

// writeCheckAllResults renders the checkall response envelope, identical
// for the resident and streamed paths (the smoke test diffs the bytes).
func writeCheckAllResults(w http.ResponseWriter, r *http.Request, results []detect.Result) {
	// A request that ran out of its context mid-batch holds partial
	// results; answer with the timeout status rather than a 200 that looks
	// like a complete family.
	if err := r.Context().Err(); err != nil {
		writeError(w, errStatus(err), "checkall aborted: %v", err)
		return
	}
	out := make([]checkResultJSON, len(results))
	violated := 0
	errored := 0
	for i, res := range results {
		out[i] = checkResultJSONOf(res)
		if res.Err != nil {
			errored++
		} else if res.Violated {
			violated++
		}
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"results":  out,
		"checked":  len(results) - errored,
		"violated": violated,
		"errored":  errored,
	})
}

// handleDrilldown returns the top-k records contributing to a violation,
// with their rendered rows.
//
// The request names either one constraint (constraint / constraint_id — the
// original single-constraint form, whose response carries the per-drill
// statistics) or a family (constraints / constraint_ids), which is drilled
// concurrently over drilldown.MultiTopK's worker pool (workers, defaulting
// to the server-wide pool size) and pooled into one deduplicated ranking.
func (s *Server) handleDrilldown(w http.ResponseWriter, r *http.Request) {
	var req struct {
		Dataset       string   `json:"dataset"`
		Constraint    string   `json:"constraint,omitempty"`
		ConstraintID  int      `json:"constraint_id,omitempty"`
		Constraints   []string `json:"constraints,omitempty"`
		ConstraintIDs []int    `json:"constraint_ids,omitempty"`
		K             int      `json:"k"`
		Strategy      string   `json:"strategy,omitempty"`
		Method        string   `json:"method,omitempty"`
		Bins          int      `json:"bins,omitempty"`
		Workers       int      `json:"workers,omitempty"`
	}
	if err := decodeJSON(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	rel, cache, release, ok := s.acquireForRequest(w, r, req.Dataset)
	if !ok {
		return
	}
	defer release()
	opts := drilldown.Options{Bins: req.Bins, Cache: cache}
	switch req.Strategy {
	case "", "best":
		opts.Strategy = drilldown.Best
	case "k":
		opts.Strategy = drilldown.K
	case "kc":
		opts.Strategy = drilldown.Kc
	default:
		writeError(w, http.StatusBadRequest, "unknown strategy %q", req.Strategy)
		return
	}
	switch req.Method {
	case "", "auto":
		opts.Method = drilldown.AutoMethod
	case "g":
		opts.Method = drilldown.GMethod
	case "tau":
		opts.Method = drilldown.TauMethod
	default:
		writeError(w, http.StatusBadRequest, "unknown drill method %q", req.Method)
		return
	}

	multi := len(req.Constraints) > 0 || len(req.ConstraintIDs) > 0
	if !multi {
		a, err := s.resolveConstraint(req.Constraint, req.ConstraintID)
		if err != nil {
			writeError(w, http.StatusBadRequest, "%v", err)
			return
		}
		res, err := drilldown.TopKContext(r.Context(), rel, a.SC, req.K, opts)
		if err != nil {
			writeError(w, errStatus(err), "%v", err)
			return
		}
		records := make([][]string, len(res.Rows))
		for i, row := range res.Rows {
			records[i] = rel.Row(row)
		}
		writeJSON(w, http.StatusOK, map[string]any{
			"constraint":   a.SC.String(),
			"rows":         res.Rows,
			"records":      records,
			"columns":      rel.Columns(),
			"initial_stat": res.InitialStat,
			"final_stat":   res.FinalStat,
		})
		return
	}

	if req.Constraint != "" || req.ConstraintID != 0 {
		writeError(w, http.StatusBadRequest, "give either a single constraint or a constraint family, not both")
		return
	}
	if len(req.Constraints) > 0 && len(req.ConstraintIDs) > 0 {
		writeError(w, http.StatusBadRequest, "give either constraints or constraint_ids, not both")
		return
	}
	var family []sc.SC
	names := make([]string, 0, len(req.Constraints)+len(req.ConstraintIDs))
	for _, text := range req.Constraints {
		a, err := sc.ParseApproximate(text)
		if err != nil {
			writeError(w, http.StatusBadRequest, "parsing constraint %q: %v", text, err)
			return
		}
		family = append(family, a.SC)
		names = append(names, a.SC.String())
	}
	for _, id := range req.ConstraintIDs {
		a, err := s.resolveConstraint("", id)
		if err != nil {
			writeError(w, http.StatusNotFound, "%v", err)
			return
		}
		family = append(family, a.SC)
		names = append(names, a.SC.String())
	}
	opts.Workers = req.Workers
	if opts.Workers <= 0 {
		opts.Workers = s.opts.Workers
	}
	opts.Hooks = s.metrics.engineHooks("drilldown")
	rows, err := drilldown.MultiTopKContext(r.Context(), rel, family, req.K, opts)
	if err != nil {
		writeError(w, errStatus(err), "%v", err)
		return
	}
	records := make([][]string, len(rows))
	for i, row := range rows {
		records[i] = rel.Row(row)
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"constraints": names,
		"rows":        rows,
		"records":     records,
		"columns":     rel.Columns(),
	})
}
