package server

import (
	"fmt"
	"net/http"
	"sort"
	"strconv"

	"scoded/internal/sc"
)

// constraintInfo is the JSON description of a registered constraint.
type constraintInfo struct {
	ID         int     `json:"id"`
	Constraint string  `json:"constraint"`
	Alpha      float64 `json:"alpha"`
	Dependence bool    `json:"dependence"`
}

func constraintInfoOf(id int, a sc.Approximate) constraintInfo {
	return constraintInfo{
		ID:         id,
		Constraint: a.SC.String(),
		Alpha:      a.Alpha,
		Dependence: a.SC.Dependence,
	}
}

// AddConstraint registers a parsed approximate SC and returns its id, e.g.
// for preloading at startup. With a store configured the constraint is
// durably written to the root registry before it becomes visible.
func (s *Server) AddConstraint(a sc.Approximate) (int, error) {
	if err := a.Validate(); err != nil {
		return 0, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.nextSC++
	id := s.nextSC
	s.constraints[id] = a
	if err := s.persistRegistryLocked(); err != nil {
		delete(s.constraints, id)
		s.nextSC--
		return 0, fmt.Errorf("persisting constraint: %w", err)
	}
	return id, nil
}

// handleConstraintAdd parses and registers a constraint from its text form,
// e.g. {"constraint": "Model _||_ Color | Year @ 0.05"}.
func (s *Server) handleConstraintAdd(w http.ResponseWriter, r *http.Request) {
	var req struct {
		Constraint string `json:"constraint"`
	}
	if err := decodeJSON(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	a, err := sc.ParseApproximate(req.Constraint)
	if err != nil {
		writeError(w, http.StatusBadRequest, "parsing constraint: %v", err)
		return
	}
	id, err := s.AddConstraint(a)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	writeJSON(w, http.StatusCreated, constraintInfoOf(id, a))
}

// handleConstraintList lists registered constraints sorted by id.
func (s *Server) handleConstraintList(w http.ResponseWriter, r *http.Request) {
	s.mu.RLock()
	infos := make([]constraintInfo, 0, len(s.constraints))
	for id, a := range s.constraints {
		infos = append(infos, constraintInfoOf(id, a))
	}
	s.mu.RUnlock()
	sort.Slice(infos, func(i, j int) bool { return infos[i].ID < infos[j].ID })
	writeJSON(w, http.StatusOK, map[string]any{"constraints": infos})
}

func (s *Server) constraintID(w http.ResponseWriter, r *http.Request) (int, bool) {
	id, err := strconv.Atoi(r.PathValue("id"))
	if err != nil {
		writeError(w, http.StatusBadRequest, "invalid constraint id %q", r.PathValue("id"))
		return 0, false
	}
	return id, true
}

// handleConstraintGet describes one constraint.
func (s *Server) handleConstraintGet(w http.ResponseWriter, r *http.Request) {
	id, ok := s.constraintID(w, r)
	if !ok {
		return
	}
	s.mu.RLock()
	a, found := s.constraints[id]
	s.mu.RUnlock()
	if !found {
		writeError(w, http.StatusNotFound, "no constraint %d", id)
		return
	}
	writeJSON(w, http.StatusOK, constraintInfoOf(id, a))
}

// handleConstraintDelete removes a constraint from the registry.
func (s *Server) handleConstraintDelete(w http.ResponseWriter, r *http.Request) {
	id, ok := s.constraintID(w, r)
	if !ok {
		return
	}
	s.mu.Lock()
	_, found := s.constraints[id]
	delete(s.constraints, id)
	if found {
		if err := s.persistRegistryLocked(); err != nil {
			s.mu.Unlock()
			writeError(w, http.StatusInternalServerError, "persisting constraint delete: %v", err)
			return
		}
	}
	s.mu.Unlock()
	if !found {
		writeError(w, http.StatusNotFound, "no constraint %d", id)
		return
	}
	writeJSON(w, http.StatusOK, map[string]int{"deleted": id})
}
