package server

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

var update = flag.Bool("update", false, "rewrite golden files with the current output")

// streamServer builds a server with one numeric monitor (id 1).
func streamServer(t *testing.T, opts Options, monitor map[string]any) *Server {
	t.Helper()
	s := New(opts)
	t.Cleanup(s.Close)
	if monitor == nil {
		monitor = map[string]any{"kind": "numeric", "alpha": 0.05, "window": 64}
	}
	var info monitorInfo
	if code := doJSON(t, s.Handler(), "POST", "/v1/monitors", monitor, &info); code != http.StatusCreated {
		t.Fatalf("monitor create: status %d", code)
	}
	if info.ID != 1 {
		t.Fatalf("monitor id %d, want 1", info.ID)
	}
	return s
}

func recordsBody(t *testing.T, xs, ys []float64) []byte {
	t.Helper()
	b, err := json.Marshal(map[string]any{"x": xs, "y": ys})
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestRecordsEndpointInsertsAndReports: the happy path — records land,
// the response reports the inserted count and the monitor state, and a
// non-finite batch is refused whole with 422.
func TestRecordsEndpointInsertsAndReports(t *testing.T) {
	s := streamServer(t, Options{}, nil)
	h := s.Handler()
	var resp struct {
		Inserted int         `json:"inserted"`
		Monitor  monitorInfo `json:"monitor"`
	}
	code := do(t, h, "POST", "/v1/monitors/1/records", "application/json",
		recordsBody(t, []float64{1, 2, 3}, []float64{4, 5, 6}), &resp)
	if code != http.StatusOK {
		t.Fatalf("records: status %d", code)
	}
	if resp.Inserted != 3 || resp.Monitor.N != 3 || resp.Monitor.Observed != 3 {
		t.Fatalf("records response: %+v", resp)
	}

	// NaN is rejected before any record lands: all-or-nothing.
	var errResp map[string]string
	bad, err := json.Marshal(map[string]any{"x": []any{1.0, "NaN-as-string"}, "y": []any{2.0, 3.0}})
	if err != nil {
		t.Fatal(err)
	}
	if code := do(t, h, "POST", "/v1/monitors/1/records", "application/json", bad, &errResp); code != http.StatusBadRequest {
		t.Fatalf("non-numeric batch: status %d", code)
	}
	if code := do(t, h, "POST", "/v1/monitors/1/records", "application/json",
		recordsBody(t, []float64{7}, []float64{8}), &resp); code != http.StatusOK {
		t.Fatalf("records after rejected batch: status %d", code)
	}
	if resp.Monitor.Observed != 4 {
		t.Fatalf("observed %d after rejected batch, want 4", resp.Monitor.Observed)
	}
}

// TestRecordsBackpressure429: a full admission queue answers 429 with a
// Retry-After header, counts the rejection, and recovers once a slot
// frees.
func TestRecordsBackpressure429(t *testing.T) {
	s := streamServer(t, Options{IngestQueue: 2}, nil)
	h := s.Handler()
	m := s.monitors[1]
	// Occupy both slots, as two stuck in-flight batches would.
	m.slots <- struct{}{}
	m.slots <- struct{}{}

	req := httptest.NewRequest("POST", "/v1/monitors/1/records",
		bytes.NewReader(recordsBody(t, []float64{1}, []float64{2})))
	req.Header.Set("Content-Type", "application/json")
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("full queue: status %d, want 429 (body %s)", rec.Code, rec.Body.String())
	}
	if ra := rec.Result().Header.Get("Retry-After"); ra == "" {
		t.Fatal("429 without Retry-After header")
	}
	m.stats.mu.Lock()
	rejected := m.stats.rejected
	m.stats.mu.Unlock()
	if rejected != 1 {
		t.Fatalf("rejected counter %d, want 1", rejected)
	}

	// Freeing a slot readmits traffic.
	<-m.slots
	var resp struct {
		Inserted int `json:"inserted"`
	}
	if code := do(t, h, "POST", "/v1/monitors/1/records", "application/json",
		recordsBody(t, []float64{1}, []float64{2}), &resp); code != http.StatusOK || resp.Inserted != 1 {
		t.Fatalf("after slot freed: status %d inserted %d", code, resp.Inserted)
	}

	// The rejection and queue depth are visible on /metrics.
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	body := rec.Body.String()
	for _, want := range []string{
		`scoded_stream_ingest_rejected_total{monitor="1"} 1`,
		`scoded_stream_queue_depth{monitor="1"} 1`,
		`scoded_stream_watermark{monitor="1"} 1`,
	} {
		if !bytes.Contains([]byte(body), []byte(want)) {
			t.Errorf("metrics missing %q", want)
		}
	}
}

// TestRecordsConcurrentIngestAndVerdict hammers one monitor with parallel
// record batches and verdict reads; run under -race this pins the locking
// discipline of the incremental kernels behind the ingest path.
func TestRecordsConcurrentIngestAndVerdict(t *testing.T) {
	s := streamServer(t, Options{IngestQueue: 64}, map[string]any{
		"kind": "numeric", "alpha": 0.05, "window": 128,
	})
	h := s.Handler()
	const writers, readers, batches = 4, 4, 25
	var wg sync.WaitGroup
	var inserted atomic.Int64
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			for b := 0; b < batches; b++ {
				xs := make([]float64, 8)
				ys := make([]float64, 8)
				for i := range xs {
					xs[i] = float64((seed*batches+b)*8 + i)
					ys[i] = xs[i] * 2
				}
				var resp struct {
					Inserted int `json:"inserted"`
				}
				if code := do(t, h, "POST", "/v1/monitors/1/records", "application/json",
					recordsBody(t, xs, ys), &resp); code != http.StatusOK {
					t.Errorf("writer %d: status %d", seed, code)
					return
				}
				inserted.Add(int64(resp.Inserted))
			}
		}(w)
	}
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < batches*2; i++ {
				var v struct {
					N int `json:"n"`
				}
				if code := doJSON(t, h, "GET", "/v1/monitors/1/verdict", nil, &v); code != http.StatusOK {
					t.Errorf("verdict: status %d", code)
					return
				}
				if v.N > 128 {
					t.Errorf("window overflow: n=%d", v.N)
					return
				}
			}
		}()
	}
	wg.Wait()
	if got := inserted.Load(); got != writers*batches*8 {
		t.Fatalf("inserted %d records, want %d", got, writers*batches*8)
	}
	var v struct {
		N        int   `json:"n"`
		Observed int64 `json:"observed"`
	}
	doJSON(t, h, "GET", "/v1/monitors/1/verdict", nil, &v)
	if v.N != 128 || v.Observed != writers*batches*8 {
		t.Fatalf("final verdict n=%d observed=%d", v.N, v.Observed)
	}
}

// TestRecordsClientDisconnectMidBatch: a client that vanishes mid-batch
// stops the insert loop, the monitor keeps exactly the inserted prefix,
// and no goroutine survives the request.
func TestRecordsClientDisconnectMidBatch(t *testing.T) {
	before := runtime.NumGoroutine()
	s := streamServer(t, Options{}, map[string]any{
		"kind": "numeric", "alpha": 0.05, "window": 50000,
	})
	ts := httptest.NewServer(s.Handler())

	const total = 400000
	xs := make([]float64, total)
	ys := make([]float64, total)
	for i := range xs {
		xs[i] = float64(i % 997)
		ys[i] = float64((i * 31) % 1009)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, "POST", ts.URL+"/v1/monitors/1/records",
		bytes.NewReader(recordsBody(t, xs, ys)))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	done := make(chan error, 1)
	go func() {
		resp, err := http.DefaultClient.Do(req)
		if err == nil {
			resp.Body.Close()
		}
		done <- err
	}()
	// Let the batch get going, then vanish.
	time.Sleep(300 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("disconnected request still got a full response")
		}
	case <-time.After(15 * time.Second):
		t.Fatal("disconnected records batch did not return")
	}

	// The monitor retains the inserted prefix (the insert loop stopped),
	// not the whole batch.
	m := s.monitors[1]
	m.mu.Lock()
	observed := m.observed
	m.mu.Unlock()
	if observed == 0 {
		t.Skip("batch cancelled before any insert; timing too tight to assert a prefix")
	}
	if observed >= total {
		t.Fatalf("observed %d of %d: cancellation did not stop the batch", observed, total)
	}

	ts.Close()
	deadline := time.Now().Add(10 * time.Second)
	for {
		if g := runtime.NumGoroutine(); g <= before+2 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d before, %d after drain", before, runtime.NumGoroutine())
		}
		time.Sleep(25 * time.Millisecond)
	}
}

// violatedBatch returns a perfectly concordant batch that drives an ISC
// monitor's p-value to ~0, flipping its verdict to violated.
func violatedBatch(n int) (xs, ys []float64) {
	xs = make([]float64, n)
	ys = make([]float64, n)
	for i := range xs {
		xs[i] = float64(i)
		ys[i] = float64(i)
	}
	return xs, ys
}

// TestAlertWebhookFiredOnFlip: the sink fires exactly once per flip to
// violated (not per batch while violated), and the payload matches the
// frozen golden byte-for-byte.
func TestAlertWebhookFiredOnFlip(t *testing.T) {
	var hits atomic.Int64
	var gotBody atomic.Value
	hook := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		b := new(bytes.Buffer)
		if _, err := b.ReadFrom(r.Body); err == nil {
			gotBody.Store(b.Bytes())
		}
		hits.Add(1)
	}))
	defer hook.Close()

	s := streamServer(t, Options{AlertBackoff: time.Millisecond}, map[string]any{
		"kind": "numeric", "alpha": 0.05, "window": 0, "webhook": hook.URL,
	})
	h := s.Handler()
	xs, ys := violatedBatch(100)
	var resp struct {
		Inserted int `json:"inserted"`
	}
	if code := do(t, h, "POST", "/v1/monitors/1/records", "application/json",
		recordsBody(t, xs, ys), &resp); code != http.StatusOK {
		t.Fatalf("records: status %d", code)
	}
	waitForAlerts(t, s.monitors[1], func(st *streamStats) bool { return st.alertsFired == 1 })

	// Still violated: another batch must NOT re-alert.
	if code := do(t, h, "POST", "/v1/monitors/1/records", "application/json",
		recordsBody(t, []float64{1000}, []float64{1000}), &resp); code != http.StatusOK {
		t.Fatalf("second batch: status %d", code)
	}
	s.Close() // drain any in-flight delivery before counting
	if hits.Load() != 1 {
		t.Fatalf("webhook hit %d times, want 1 (alert on flip only)", hits.Load())
	}

	payload, _ := gotBody.Load().([]byte)
	golden := filepath.Join("testdata", "alert_payload.golden.json")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, payload, 0o644); err != nil {
			t.Fatalf("update golden: %v", err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (run `go test ./internal/server -run AlertWebhookFired -update` to create it): %v", err)
	}
	if !bytes.Equal(payload, want) {
		t.Fatalf("alert payload drifted from golden:\ngot:  %s\nwant: %s", payload, want)
	}
}

// TestAlertWebhookRetryExhaustion: a sink that always fails is retried
// with backoff, then counted as a delivery failure — never blocking the
// ingest path.
func TestAlertWebhookRetryExhaustion(t *testing.T) {
	var hits atomic.Int64
	hook := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		w.WriteHeader(http.StatusInternalServerError)
	}))
	defer hook.Close()

	s := streamServer(t, Options{
		AlertWebhook: hook.URL, // server-wide fallback: monitor has no webhook of its own
		AlertRetries: 2,
		AlertBackoff: time.Millisecond,
	}, map[string]any{"kind": "numeric", "alpha": 0.05})
	h := s.Handler()
	xs, ys := violatedBatch(64)
	var resp struct {
		Inserted int `json:"inserted"`
	}
	if code := do(t, h, "POST", "/v1/monitors/1/records", "application/json",
		recordsBody(t, xs, ys), &resp); code != http.StatusOK {
		t.Fatalf("records: status %d", code)
	}
	waitForAlerts(t, s.monitors[1], func(st *streamStats) bool { return st.alertFailures == 1 })
	if hits.Load() != 2 {
		t.Fatalf("webhook attempted %d times, want 2 (AlertRetries)", hits.Load())
	}

	// The failure and the engine's alert stage show up on /metrics.
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	body := rec.Body.String()
	for _, want := range []string{
		`scoded_stream_alert_failures_total{monitor="1"} 1`,
		`scoded_engine_items_total{stage="alert"} 1`,
	} {
		if !bytes.Contains([]byte(body), []byte(want)) {
			t.Errorf("metrics missing %q", want)
		}
	}
}

func waitForAlerts(t *testing.T, m *monitorEntry, ok func(*streamStats) bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		m.stats.mu.Lock()
		done := ok(&m.stats)
		m.stats.mu.Unlock()
		if done {
			return
		}
		if time.Now().After(deadline) {
			m.stats.mu.Lock()
			defer m.stats.mu.Unlock()
			t.Fatalf("alert counters never converged: fired=%d dropped=%d failures=%d",
				m.stats.alertsFired, m.stats.alertsDropped, m.stats.alertFailures)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestStreamMetricsGolden freezes the streaming gauge names and format:
// renaming a gauge is a monitoring-breaking change and must show up as a
// golden diff.
func TestStreamMetricsGolden(t *testing.T) {
	s := New(Options{})
	t.Cleanup(s.Close)
	base := time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)
	for id := 1; id <= 2; id++ {
		m := &monitorEntry{id: id, kind: "numeric", alpha: 0.05, window: 100}
		m.slots = make(chan struct{}, 16)
		m.stats.watermark = int64(1000 * id)
		m.stats.lastApplied = base.Add(-time.Duration(id) * time.Second)
		m.stats.rate.value = float64(2500 * id)
		m.stats.rejected = int64(id - 1)
		m.stats.alertsFired = int64(id)
		m.stats.alertsDropped = 0
		m.stats.alertFailures = int64(2 - id)
		s.monitors[id] = m
	}
	s.monitors[2].slots <- struct{}{} // one admitted batch in flight

	var buf bytes.Buffer
	s.writeStreamMetrics(&buf, base)
	golden := filepath.Join("testdata", "stream_metrics.golden.txt")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatalf("update golden: %v", err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (run `go test ./internal/server -run StreamMetricsGolden -update` to create it): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("stream metrics drifted from golden:\ngot:\n%s\nwant:\n%s", buf.Bytes(), want)
	}
}

// TestServeCloseIsIdempotent: Close twice (deferred and explicit in
// scoded-serve) must not panic or hang.
func TestServeCloseIsIdempotent(t *testing.T) {
	s := New(Options{})
	s.Close()
	s.Close()
}

// TestMonitorWebhookPersists: the webhook survives a restart through the
// durable definition.
func TestMonitorWebhookPersists(t *testing.T) {
	dir := t.TempDir()
	s := newDurableServer(t, dir)
	var info monitorInfo
	if code := doJSON(t, s.Handler(), "POST", "/v1/monitors", map[string]any{
		"kind": "numeric", "alpha": 0.05, "window": 8, "webhook": "http://127.0.0.1:1/alert",
	}, &info); code != http.StatusCreated {
		t.Fatalf("create: status %d", code)
	}
	s.Close()

	s2 := newDurableServer(t, dir)
	t.Cleanup(s2.Close)
	m, ok := s2.monitors[info.ID]
	if !ok {
		t.Fatalf("monitor %d not restored", info.ID)
	}
	if m.webhook != "http://127.0.0.1:1/alert" {
		t.Fatalf("restored webhook %q", m.webhook)
	}
	if m.slots == nil {
		t.Fatal("restored monitor has no ingest slots armed")
	}
}
