package server

import (
	"net/http"
	"sort"
	"strings"
	"time"

	"scoded/internal/kernel"
	"scoded/internal/relation"
	"scoded/internal/store"
)

// dataset is one registered relation snapshot at one store version. The
// relation is immutable after registration: detection endpoints only read
// it, so concurrent checks need no lock beyond the registry lookup. Each
// dataset carries the kernel cache view bound to its relation+version;
// appends swap in a new snapshot whose cache is derived with Advance
// (shared entries, bumped version), while re-registration swaps in a
// wholly fresh cache. Either way, in-flight checks finish against the old
// relation+cache pair, which stays internally consistent.
//
// A store-backed dataset may be cold: rel and cache are nil and only the
// metadata fields below are filled (from the manifest). The first request
// that needs rows materializes them through acquireDataset (residents.go),
// and the resident-byte budget may evict them back to this form.
type dataset struct {
	name    string
	rel     *relation.Relation // nil while cold
	cache   *kernel.Cache      // nil while cold
	version uint64
	created time.Time

	// Descriptive metadata, always filled, so listing, schema checks and
	// the streaming chooser never force a materialization.
	rows      int
	schema    []columnMeta
	stored    bool  // backed by the configured store (reloadable, evictable)
	diskBytes int64 // manifest segment bytes; 0 when !stored

	res *residentEntry // residency accounting record; nil while cold
}

// columnMeta is one column's name and kind, known without the rows.
type columnMeta struct {
	name string
	kind relation.Kind
}

func relSchema(rel *relation.Relation) []columnMeta {
	out := make([]columnMeta, 0, rel.NumCols())
	for _, name := range rel.Columns() {
		out = append(out, columnMeta{name: name, kind: rel.MustColumn(name).Kind})
	}
	return out
}

func manifestSchema(m *store.Manifest) []columnMeta {
	out := make([]columnMeta, 0, len(m.Schema))
	for _, c := range m.Schema {
		kind := relation.Numeric
		if c.Kind == store.ColKindCategorical {
			kind = relation.Categorical
		}
		out = append(out, columnMeta{name: c.Name, kind: kind})
	}
	return out
}

// segmentBytes totals a manifest's on-disk segment sizes.
func segmentBytes(m *store.Manifest) int64 {
	var total int64
	for _, seg := range m.Segments {
		total += seg.Bytes
	}
	return total
}

func newDatasetAt(name string, rel *relation.Relation, version uint64) *dataset {
	return &dataset{
		name: name, rel: rel, cache: kernel.NewAt(rel, version),
		version: version, created: time.Now(),
		rows: rel.NumRows(), schema: relSchema(rel),
	}
}

// datasetInfo is the JSON description of a registered dataset.
type datasetInfo struct {
	Name    string       `json:"name"`
	Rows    int          `json:"rows"`
	Version uint64       `json:"version"`
	Columns []columnInfo `json:"columns"`
	Created time.Time    `json:"created"`
}

type columnInfo struct {
	Name string `json:"name"`
	Kind string `json:"kind"`
}

// info renders the dataset from its metadata alone, so listing never
// materializes a cold dataset.
func (d *dataset) info() datasetInfo {
	info := datasetInfo{Name: d.name, Rows: d.rows, Version: d.version, Created: d.created}
	for _, c := range d.schema {
		info.Columns = append(info.Columns, columnInfo{Name: c.name, Kind: c.kind.String()})
	}
	return info
}

// AddDataset registers a relation under a name, e.g. for preloading at
// startup. It fails if the name is taken. With a store configured the
// dataset is durably written before it becomes visible.
func (s *Server) AddDataset(name string, rel *relation.Relation) error {
	if strings.TrimSpace(name) == "" {
		return errEmptyName
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, dup := s.datasets[name]; dup {
		return errDuplicateName(name)
	}
	version := uint64(0)
	var m *store.Manifest
	if s.store != nil {
		var err error
		m, err = s.store.Replace(name, rel)
		if err != nil {
			return err
		}
		version = m.Version
	}
	d := newDatasetAt(name, rel, version)
	if m != nil {
		d.stored = true
		d.diskBytes = segmentBytes(m)
	}
	s.datasets[name] = d
	s.noteResidentLocked(d)
	return nil
}

// PutDataset registers a relation under a name, replacing any existing
// dataset with that name. Replacement invalidates all state derived from
// the old relation: the registry entry (and with it the kernel cache) is
// swapped for a fresh one, and monitors bound to the dataset are deleted
// so no verdict can mix old and new data. With a store configured the
// replacement is durable — and the stored version is bumped, never reset,
// so version-keyed cache entries from the old content can never be
// mistaken for the new. It reports whether an existing dataset was
// replaced.
func (s *Server) PutDataset(name string, rel *relation.Relation) (bool, error) {
	if strings.TrimSpace(name) == "" {
		return false, errEmptyName
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	old, replaced := s.datasets[name]
	version := uint64(0)
	if replaced {
		version = old.version + 1
	}
	var m *store.Manifest
	if s.store != nil {
		var err error
		m, err = s.store.Replace(name, rel)
		if err != nil {
			return false, err
		}
		version = m.Version
	}
	d := newDatasetAt(name, rel, version)
	if m != nil {
		d.stored = true
		d.diskBytes = segmentBytes(m)
	}
	s.datasets[name] = d
	s.noteResidentLocked(d)
	if replaced {
		s.dropBoundMonitorsLocked(name)
	}
	return replaced, nil
}

type namedError string

func (e namedError) Error() string { return string(e) }

const errEmptyName = namedError("dataset name must be non-empty")

func errDuplicateName(name string) error {
	return namedError("dataset " + name + " already registered")
}

// handleDatasetUpload registers a dataset from a CSV request body. The
// name comes from the "name" query parameter. Uploading under an existing
// name replaces the dataset (200 instead of 201): the stale kernel cache
// is dropped with the old registry entry and monitors bound to the name
// are deleted, so subsequent checks always reflect the new rows.
func (s *Server) handleDatasetUpload(w http.ResponseWriter, r *http.Request) {
	name := r.URL.Query().Get("name")
	if strings.TrimSpace(name) == "" {
		writeError(w, http.StatusBadRequest, "missing ?name= query parameter")
		return
	}
	body := http.MaxBytesReader(w, r.Body, s.opts.MaxUploadBytes)
	rel, err := relation.ReadCSV(body)
	if err != nil {
		writeError(w, http.StatusBadRequest, "parsing CSV: %v", err)
		return
	}
	replaced, err := s.PutDataset(name, rel)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	s.mu.RLock()
	info := s.datasets[name].info()
	s.mu.RUnlock()
	status := http.StatusCreated
	if replaced {
		status = http.StatusOK
	}
	writeJSON(w, status, info)
}

// handleDatasetAppend appends rows to an existing dataset from a CSV
// request body (header row required, schema must match). The append is
// durable before it is visible: the store writes a new immutable segment
// and swaps the manifest, then the in-memory snapshot is replaced by a
// grown relation with an Advance-derived kernel cache — existing rows
// keep their indices and codes, so cache entries for untouched strata
// stay warm across the append.
//
// Appending to a cold dataset stays cold: the batch goes straight to the
// store as a new segment and only the metadata entry is refreshed, so an
// append never forces a larger-than-budget dataset into memory. The next
// materialization reads the new segment along with the rest.
func (s *Server) handleDatasetAppend(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	s.mu.RLock()
	d, ok := s.datasets[name]
	var kinds map[string]relation.Kind
	if ok {
		// Pin the batch's column kinds to the dataset's schema so inference
		// cannot diverge (e.g. a numeric-looking batch for a categorical
		// column). The metadata schema covers cold datasets too.
		kinds = make(map[string]relation.Kind, len(d.schema))
		for _, c := range d.schema {
			kinds[c.name] = c.kind
		}
	}
	s.mu.RUnlock()
	if !ok {
		writeError(w, http.StatusNotFound, "no dataset %q", name)
		return
	}
	body := http.MaxBytesReader(w, r.Body, s.opts.MaxUploadBytes)
	batch, err := relation.ReadCSVTyped(body, kinds)
	if err != nil {
		writeError(w, http.StatusBadRequest, "parsing CSV: %v", err)
		return
	}
	if batch.NumRows() == 0 {
		writeError(w, http.StatusBadRequest, "append batch has no rows")
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	d, ok = s.datasets[name] // re-resolve: the dataset may have been swapped
	if !ok {
		writeError(w, http.StatusNotFound, "no dataset %q", name)
		return
	}
	if d.rel == nil {
		// Cold, store-backed: append through the store without
		// materializing. The store validates the batch schema against the
		// manifest.
		m, err := s.store.Append(name, batch)
		if err != nil {
			writeError(w, http.StatusBadRequest, "persisting append: %v", err)
			return
		}
		entry := &dataset{
			name: name, version: m.Version, created: d.created,
			rows: m.Rows, schema: d.schema, stored: true, diskBytes: segmentBytes(m),
		}
		s.datasets[name] = entry
		resp := struct {
			datasetInfo
			Appended int `json:"appended"`
		}{entry.info(), batch.NumRows()}
		writeJSON(w, http.StatusOK, resp)
		return
	}
	grown, err := d.rel.AppendRows(batch)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	version := d.version + 1
	var diskBytes int64
	if s.store != nil {
		m, err := s.store.Append(name, batch)
		if err != nil {
			writeError(w, http.StatusInternalServerError, "persisting append: %v", err)
			return
		}
		version = m.Version
		diskBytes = segmentBytes(m)
	}
	entry := &dataset{
		name: name, rel: grown, cache: d.cache.Advance(grown, version),
		version: version, created: d.created,
		rows: grown.NumRows(), schema: relSchema(grown),
		stored: d.stored, diskBytes: diskBytes,
	}
	s.datasets[name] = entry
	s.noteResidentLocked(entry)
	resp := struct {
		datasetInfo
		Appended int `json:"appended"`
	}{entry.info(), batch.NumRows()}
	writeJSON(w, http.StatusOK, resp)
}

// handleDatasetList lists registered datasets sorted by name.
func (s *Server) handleDatasetList(w http.ResponseWriter, r *http.Request) {
	s.mu.RLock()
	infos := make([]datasetInfo, 0, len(s.datasets))
	for _, d := range s.datasets {
		infos = append(infos, d.info())
	}
	s.mu.RUnlock()
	sort.Slice(infos, func(i, j int) bool { return infos[i].Name < infos[j].Name })
	writeJSON(w, http.StatusOK, map[string]any{"datasets": infos})
}

// handleDatasetGet describes one dataset.
func (s *Server) handleDatasetGet(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	s.mu.RLock()
	d, ok := s.datasets[name]
	var info datasetInfo
	if ok {
		info = d.info()
	}
	s.mu.RUnlock()
	if !ok {
		writeError(w, http.StatusNotFound, "no dataset %q", name)
		return
	}
	writeJSON(w, http.StatusOK, info)
}

// handleDatasetDelete removes a dataset from the registry, along with any
// monitors bound to it. In-flight checks holding the relation pointer
// finish safely: relations are immutable.
func (s *Server) handleDatasetDelete(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	s.mu.Lock()
	_, ok := s.datasets[name]
	delete(s.datasets, name)
	if ok {
		s.res.retire(name)
		s.dropBoundMonitorsLocked(name)
		if s.store != nil && s.store.HasDataset(name) {
			if err := s.store.Drop(name); err != nil {
				s.mu.Unlock()
				writeError(w, http.StatusInternalServerError, "dropping stored dataset: %v", err)
				return
			}
		}
	}
	s.mu.Unlock()
	if !ok {
		writeError(w, http.StatusNotFound, "no dataset %q", name)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"deleted": name})
}
