package server

import (
	"bytes"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"scoded/internal/store"
)

// corruptSegments flips a byte in the middle of every segment file under
// dir, so any attempt to decode rows fails its checksum while manifests
// stay intact. The lazy-boot tests use it to prove which paths read rows.
func corruptSegments(t *testing.T, dir string) int {
	t.Helper()
	paths, err := filepath.Glob(filepath.Join(dir, "*", "seg-*.bin"))
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) == 0 {
		t.Fatal("no segment files found to corrupt")
	}
	for _, p := range paths {
		b, err := os.ReadFile(p)
		if err != nil {
			t.Fatal(err)
		}
		b[len(b)/2] ^= 0xff
		if err := os.WriteFile(p, b, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return len(paths)
}

// TestLoadStoreIsLazy pins the boot-I/O contract: LoadStore must touch
// only manifests, never segment rows. Every segment file is corrupted
// before the reboot — a boot that read rows would fail its checksum — yet
// boot succeeds and metadata endpoints serve from the manifest; only the
// first detection request (the lazy materialization) hits the corruption.
func TestLoadStoreIsLazy(t *testing.T) {
	dir := t.TempDir()
	s1 := newDurableServer(t, dir)
	if code := do(t, s1.Handler(), "POST", "/v1/datasets?name=cars", "text/csv", []byte(testCSV(21, 200)), nil); code != http.StatusCreated {
		t.Fatalf("upload status %d", code)
	}
	if code := do(t, s1.Handler(), "POST", "/v1/datasets/cars/rows", "text/csv", []byte(testCSV(22, 50)), nil); code != http.StatusOK {
		t.Fatalf("append status %d", code)
	}
	s1.Close()
	corruptSegments(t, dir)

	s2 := newDurableServer(t, dir) // boot succeeds: O(manifests), not O(rows)
	defer s2.Close()
	h := s2.Handler()

	var info datasetInfo
	if code := do(t, h, "GET", "/v1/datasets/cars", "", nil, &info); code != http.StatusOK {
		t.Fatalf("get status %d", code)
	}
	if info.Rows != 250 || len(info.Columns) != 4 {
		t.Fatalf("manifest metadata: %+v", info)
	}
	s2.mu.RLock()
	d := s2.datasets["cars"]
	cold := d != nil && d.rel == nil && d.cache == nil && d.stored && d.diskBytes > 0
	s2.mu.RUnlock()
	if !cold {
		t.Fatalf("dataset not registered cold: %+v", d)
	}

	// The first request needing rows must materialize — and hit the
	// corruption, proving boot never read what this reads.
	var checkErr struct {
		Error string `json:"error"`
	}
	code := doJSON(t, h, "POST", "/v1/check",
		map[string]any{"dataset": "cars", "constraint": "Model _||_ Price @ 0.05"}, &checkErr)
	if code != http.StatusInternalServerError {
		t.Fatalf("check on corrupted segments: status %d (%+v)", code, checkErr)
	}
	if !strings.Contains(checkErr.Error, "checksum mismatch") {
		t.Fatalf("check error %q, want checksum mismatch", checkErr.Error)
	}
}

// TestLazyMaterializationRoundTrip: a rebooted server answers checks
// identically to the one that wrote the store, materializing on first
// touch and counting the hit/miss in the residency tracker.
func TestLazyMaterializationRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s1 := newDurableServer(t, dir)
	if code := do(t, s1.Handler(), "POST", "/v1/datasets?name=cars", "text/csv", []byte(testCSV(31, 300)), nil); code != http.StatusCreated {
		t.Fatalf("upload status %d", code)
	}
	checkReq := []byte(`{"dataset":"cars","constraints":["Model _||_ Price @ 0.05","Price _||_ Mileage | Model @ 0.05"],"workers":1}`)
	code1, body1 := doRaw(t, s1.Handler(), "POST", "/v1/checkall", "application/json", checkReq)
	if code1 != http.StatusOK {
		t.Fatalf("checkall status %d: %s", code1, body1)
	}
	s1.Close()

	s2 := newDurableServer(t, dir)
	defer s2.Close()
	code2, body2 := doRaw(t, s2.Handler(), "POST", "/v1/checkall", "application/json", checkReq)
	if code2 != http.StatusOK {
		t.Fatalf("checkall after reboot: status %d: %s", code2, body2)
	}
	if !bytes.Equal(body1, body2) {
		t.Fatalf("lazy-materialized checkall differs:\n%s\nvs\n%s", body1, body2)
	}
	s2.res.mu.Lock()
	misses, bytesRes := s2.res.misses, s2.res.bytes
	s2.res.mu.Unlock()
	if misses != 1 {
		t.Fatalf("materializations = %d, want 1", misses)
	}
	if bytesRes <= 0 {
		t.Fatalf("resident bytes = %d after materialization", bytesRes)
	}
}

// TestColdAppendStaysCold: appending to a cold dataset writes the segment
// through the store without materializing, and the next materialization
// sees the appended rows.
func TestColdAppendStaysCold(t *testing.T) {
	dir := t.TempDir()
	s1 := newDurableServer(t, dir)
	if code := do(t, s1.Handler(), "POST", "/v1/datasets?name=cars", "text/csv", []byte(testCSV(41, 120)), nil); code != http.StatusCreated {
		t.Fatalf("upload status %d", code)
	}
	s1.Close()

	s2 := newDurableServer(t, dir)
	defer s2.Close()
	h := s2.Handler()
	var info struct {
		datasetInfo
		Appended int `json:"appended"`
	}
	if code := do(t, h, "POST", "/v1/datasets/cars/rows", "text/csv", []byte(testCSV(42, 30)), &info); code != http.StatusOK {
		t.Fatalf("cold append status %d: %+v", code, info)
	}
	if info.Rows != 150 || info.Appended != 30 {
		t.Fatalf("cold append info: %+v", info)
	}
	s2.mu.RLock()
	stillCold := s2.datasets["cars"].rel == nil
	s2.mu.RUnlock()
	if !stillCold {
		t.Fatal("cold append materialized the dataset")
	}
	var res checkResultJSON
	code := doJSON(t, h, "POST", "/v1/check",
		map[string]any{"dataset": "cars", "constraint": "Model _||_ Price @ 0.05"}, &res)
	if code != http.StatusOK {
		t.Fatalf("check status %d (%+v)", code, res)
	}
	if res.Test.N != 150 {
		t.Fatalf("check saw N=%d rows, want 150 (appended segment missing)", res.Test.N)
	}
}

// TestEvictionUnderConcurrentCheckAll hammers two datasets under a budget
// smaller than either, so every release triggers eviction while sibling
// requests hold references. Checks must all succeed (in-flight relations
// are never invalidated), the LRU must end the run within its invariants,
// and no goroutine may leak.
func TestEvictionUnderConcurrentCheckAll(t *testing.T) {
	dir := t.TempDir()
	seed := newDurableServer(t, dir)
	for _, name := range []string{"a", "b"} {
		if code := do(t, seed.Handler(), "POST", "/v1/datasets?name="+name, "text/csv", []byte(testCSV(51, 150)), nil); code != http.StatusCreated {
			t.Fatalf("upload %s status %d", name, code)
		}
	}
	seed.Close()

	before := runtime.NumGoroutine()
	s := newDurableServerWithBudget(t, dir, 1) // 1 byte: everything over budget
	defer s.Close()
	h := s.Handler()

	var wg sync.WaitGroup
	errs := make(chan string, 64)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			name := []string{"a", "b"}[g%2]
			for i := 0; i < 6; i++ {
				var out struct {
					Checked int `json:"checked"`
					Errored int `json:"errored"`
				}
				code := doJSON(t, h, "POST", "/v1/checkall", map[string]any{
					"dataset":     name,
					"constraints": []string{"Model _||_ Price @ 0.05", "Price _||_ Mileage | Model @ 0.05"},
					"source":      "resident", // force materialization so eviction churns
				}, &out)
				if code != http.StatusOK || out.Errored != 0 || out.Checked != 2 {
					errs <- fmt.Sprintf("%s run %d: status %d, %+v", name, i, code, out)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Error(e)
	}

	// Once the storm settles the budget must hold: 1 byte fits nothing, so
	// both datasets are cold and the tracker is empty.
	s.evictOverBudget()
	s.res.mu.Lock()
	bytesRes, entries, evictions := s.res.bytes, len(s.res.entries), s.res.evictions
	s.res.mu.Unlock()
	if bytesRes != 0 || entries != 0 {
		t.Fatalf("after drain: resident bytes=%d entries=%d, want 0/0", bytesRes, entries)
	}
	if evictions == 0 {
		t.Fatal("no evictions happened under a 1-byte budget")
	}
	s.mu.RLock()
	for _, name := range []string{"a", "b"} {
		if s.datasets[name].rel != nil {
			t.Errorf("dataset %s still resident after drain", name)
		}
	}
	s.mu.RUnlock()

	// Goroutine-leak check: allow the runtime a moment to retire workers.
	deadline := time.Now().Add(2 * time.Second)
	for {
		if runtime.NumGoroutine() <= before+2 {
			break
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutines leaked: %d -> %d\n%s", before, runtime.NumGoroutine(), buf[:n])
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// newDurableServerWithBudget is newDurableServer with a resident budget.
func newDurableServerWithBudget(t *testing.T, dir string, budget int64) *Server {
	t.Helper()
	st, err := store.Open(dir)
	if err != nil {
		t.Fatalf("Open(%s): %v", dir, err)
	}
	s := New(Options{Store: st, Workers: 2, ResidentBytes: budget})
	if err := s.LoadStore(); err != nil {
		t.Fatalf("LoadStore: %v", err)
	}
	return s
}

// TestCheckAllStreamedMatchesResident drives the source chooser through
// the HTTP layer: under a tiny budget the auto path streams (no
// materialization at all), and its response bytes equal the resident
// path's.
func TestCheckAllStreamedMatchesResident(t *testing.T) {
	dir := t.TempDir()
	s1 := newDurableServer(t, dir)
	if code := do(t, s1.Handler(), "POST", "/v1/datasets?name=cars", "text/csv", []byte(testCSV(61, 300)), nil); code != http.StatusCreated {
		t.Fatalf("upload status %d", code)
	}
	if code := do(t, s1.Handler(), "POST", "/v1/datasets/cars/rows", "text/csv", []byte(testCSV(62, 60)), nil); code != http.StatusOK {
		t.Fatalf("append status %d", code)
	}
	req := []byte(`{"dataset":"cars","constraints":["Model _||_ Color @ 0.05","Price _||_ Mileage | Model @ 0.05","Model _||_ Price @ 0.05"],"fdr":0.1,"workers":1}`)
	wantCode, wantBody := doRaw(t, s1.Handler(), "POST", "/v1/checkall", "application/json", req)
	if wantCode != http.StatusOK {
		t.Fatalf("resident checkall status %d: %s", wantCode, wantBody)
	}
	s1.Close()

	s2 := newDurableServerWithBudget(t, dir, 1)
	s2.opts.ScanWindowRows = 37 // sub-segment windows, mid-stratum splits
	defer s2.Close()
	gotCode, gotBody := doRaw(t, s2.Handler(), "POST", "/v1/checkall", "application/json", req)
	if gotCode != http.StatusOK {
		t.Fatalf("streamed checkall status %d: %s", gotCode, gotBody)
	}
	if !bytes.Equal(gotBody, wantBody) {
		t.Fatalf("streamed response differs from resident:\n%s\nvs\n%s", gotBody, wantBody)
	}
	// The streamed run must never have materialized the dataset.
	s2.mu.RLock()
	cold := s2.datasets["cars"].rel == nil
	s2.mu.RUnlock()
	if !cold {
		t.Fatal("auto source materialized a dataset larger than the whole budget")
	}
	s2.res.mu.Lock()
	misses := s2.res.misses
	s2.res.mu.Unlock()
	if misses != 0 {
		t.Fatalf("streamed checkall recorded %d materializations, want 0", misses)
	}

	// Forcing the source works both ways and stays byte-identical.
	forced := []byte(`{"dataset":"cars","constraints":["Model _||_ Color @ 0.05","Price _||_ Mileage | Model @ 0.05","Model _||_ Price @ 0.05"],"fdr":0.1,"workers":1,"source":"stream"}`)
	if code, body := doRaw(t, s2.Handler(), "POST", "/v1/checkall", "application/json", forced); code != http.StatusOK || !bytes.Equal(body, wantBody) {
		t.Fatalf("forced stream: status %d, body diff %v", code, !bytes.Equal(body, wantBody))
	}
	res := []byte(`{"dataset":"cars","constraints":["Model _||_ Color @ 0.05","Price _||_ Mileage | Model @ 0.05","Model _||_ Price @ 0.05"],"fdr":0.1,"workers":1,"source":"resident"}`)
	if code, body := doRaw(t, s2.Handler(), "POST", "/v1/checkall", "application/json", res); code != http.StatusOK || !bytes.Equal(body, wantBody) {
		t.Fatalf("forced resident: status %d, body diff %v", code, !bytes.Equal(body, wantBody))
	}

	// A non-stream-eligible method under the same budget falls back to
	// materialization rather than changing statistics.
	exact := []byte(`{"dataset":"cars","constraints":["Model _||_ Price @ 0.05"],"method":"pearson"}`)
	var out struct {
		Errored int `json:"errored"`
	}
	if code := do(t, s2.Handler(), "POST", "/v1/checkall", "application/json", exact, &out); code != http.StatusOK {
		t.Fatalf("pearson fallback status %d", code)
	}
	// And forcing stream with it is a client error.
	bad := []byte(`{"dataset":"cars","constraints":["Model _||_ Price @ 0.05"],"method":"pearson","source":"stream"}`)
	if code, body := doRaw(t, s2.Handler(), "POST", "/v1/checkall", "application/json", bad); code != http.StatusBadRequest {
		t.Fatalf("forced stream with pearson: status %d: %s", code, body)
	}
}

// TestResidentMetrics smoke-checks the gauge rendering.
func TestResidentMetrics(t *testing.T) {
	dir := t.TempDir()
	s := newDurableServerWithBudget(t, dir, 1<<30)
	defer s.Close()
	if code := do(t, s.Handler(), "POST", "/v1/datasets?name=cars", "text/csv", []byte(testCSV(71, 50)), nil); code != http.StatusCreated {
		t.Fatalf("upload status %d", code)
	}
	_, body := doRaw(t, s.Handler(), "GET", "/metrics", "", nil)
	text := string(body)
	for _, want := range []string{
		"scoded_resident_bytes ",
		"scoded_resident_budget_bytes 1073741824",
		"scoded_resident_relations 1",
		"scoded_resident_hits_total ",
		"scoded_resident_misses_total 0",
		"scoded_resident_evictions_total 0",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}
