package server

import (
	"context"
	"fmt"
	"io"
	"sort"
	"strconv"
	"time"

	"scoded/internal/relation"
	"scoded/internal/sc"
	"scoded/internal/store"
	"scoded/internal/stream"
)

// This file is the server's durability glue: every registry mutation that
// must survive a restart is written through to the configured store, and
// LoadStore replays the store back into the registries on boot.
//
// Persistence split: dataset rows live as segments; monitor definitions
// bound to a dataset live in that dataset's manifest (they share its
// fate — replacing the dataset drops them); constraints, unbound monitor
// definitions and the id counters live in the root registry; monitor
// window contents live in per-monitor observation logs replayed through
// the same InsertBatch path live observations take.

// def renders the monitor's durable definition.
func (m *monitorEntry) def() store.MonitorDef {
	m.mu.Lock()
	observed := m.observed
	m.mu.Unlock()
	return store.MonitorDef{
		ID: m.id, Kind: m.kind, Alpha: m.alpha, Dependence: m.dependence,
		Window: m.window, Dataset: m.dataset, Webhook: m.webhook, Observed: observed,
	}
}

// boundDefsLocked gathers the definitions of monitors bound to the named
// dataset, sorted by id. Callers hold s.mu.
func (s *Server) boundDefsLocked(name string) []store.MonitorDef {
	defs := []store.MonitorDef{}
	for _, m := range s.monitors {
		if m.dataset == name {
			defs = append(defs, m.def())
		}
	}
	sort.Slice(defs, func(i, j int) bool { return defs[i].ID < defs[j].ID })
	return defs
}

// persistBoundMonitorsLocked rewrites the named dataset's manifest monitor
// list from the live registry. Callers hold s.mu.
func (s *Server) persistBoundMonitorsLocked(name string) error {
	if s.store == nil || !s.store.HasDataset(name) {
		return nil
	}
	return s.store.SetMonitors(name, s.boundDefsLocked(name))
}

// persistRegistryLocked rewrites the root registry (constraints, unbound
// monitors, id counters). Callers hold s.mu.
func (s *Server) persistRegistryLocked() error {
	if s.store == nil {
		return nil
	}
	reg := &store.Registry{NextConstraint: s.nextSC, NextMonitor: s.nextMonitor}
	ids := make([]int, 0, len(s.constraints))
	for id := range s.constraints {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		reg.Constraints = append(reg.Constraints, store.ConstraintDef{
			ID:         id,
			Constraint: constraintText(s.constraints[id]),
		})
	}
	for _, m := range s.monitors {
		if m.dataset == "" {
			reg.Monitors = append(reg.Monitors, m.def())
		}
	}
	sort.Slice(reg.Monitors, func(i, j int) bool { return reg.Monitors[i].ID < reg.Monitors[j].ID })
	return s.store.SaveRegistry(reg)
}

// constraintText renders an approximate SC in the exact text form
// sc.ParseApproximate accepts, alpha included, so the registry round-trips
// without a separate alpha field.
func constraintText(a sc.Approximate) string {
	return a.SC.String() + " @ " + strconv.FormatFloat(a.Alpha, 'g', -1, 64)
}

// LoadStore restores the server's registries from the configured store:
// datasets are registered cold from their manifests alone — boot does
// O(manifests) I/O, never O(rows); the first request that needs a
// dataset's rows materializes them through acquireDataset — constraints
// are re-parsed, and monitors are re-armed from their durable definitions
// with their observation logs replayed. Call it once, before serving. A
// nil store is a no-op.
func (s *Server) LoadStore() error {
	if s.store == nil {
		return nil
	}
	names, err := s.store.Datasets()
	if err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, name := range names {
		m, err := s.store.Manifest(name)
		if err != nil {
			return fmt.Errorf("server: loading dataset %q: %w", name, err)
		}
		s.datasets[name] = &dataset{
			name: name, version: m.Version, created: time.Now(),
			rows: m.Rows, schema: manifestSchema(m),
			stored: true, diskBytes: segmentBytes(m),
		}
		for _, def := range m.Monitors {
			if err := s.armMonitorLocked(def); err != nil {
				return fmt.Errorf("server: re-arming monitor %d: %w", def.ID, err)
			}
		}
	}
	reg, err := s.store.Registry()
	if err != nil {
		return err
	}
	for _, c := range reg.Constraints {
		a, err := sc.ParseApproximate(c.Constraint)
		if err != nil {
			return fmt.Errorf("server: loading constraint %d (%q): %w", c.ID, c.Constraint, err)
		}
		s.constraints[c.ID] = a
		if c.ID > s.nextSC {
			s.nextSC = c.ID
		}
	}
	if reg.NextConstraint > s.nextSC {
		s.nextSC = reg.NextConstraint
	}
	for _, def := range reg.Monitors {
		if err := s.armMonitorLocked(def); err != nil {
			return fmt.Errorf("server: re-arming monitor %d: %w", def.ID, err)
		}
	}
	if reg.NextMonitor > s.nextMonitor {
		s.nextMonitor = reg.NextMonitor
	}
	return nil
}

// armMonitorLocked reconstructs one monitor from its durable definition
// and replays its observation log. Callers hold s.mu.
func (s *Server) armMonitorLocked(def store.MonitorDef) error {
	entry := &monitorEntry{
		id: def.ID, kind: def.Kind, alpha: def.Alpha, dependence: def.Dependence,
		window: def.Window, dataset: def.Dataset, webhook: def.Webhook,
		observed: def.Observed,
	}
	var err error
	switch def.Kind {
	case "categorical":
		entry.cat, err = stream.NewCategoricalMonitor(def.Alpha, def.Dependence, def.Window)
	case "numeric":
		entry.num, err = stream.NewNumericMonitor(def.Alpha, def.Dependence, def.Window)
	default:
		err = fmt.Errorf("unknown monitor kind %q", def.Kind)
	}
	if err != nil {
		return err
	}
	log, err := s.store.LoadLog(def.ID)
	if err != nil {
		return fmt.Errorf("loading observation log: %w", err)
	}
	if log != nil {
		if err := replayLog(entry, log); err != nil {
			return fmt.Errorf("replaying observation log: %w", err)
		}
	}
	// Arm ingest after the replay so the alert baseline reflects the
	// restored window: a monitor restored mid-violation does not re-alert
	// until its verdict clears and flips again.
	entry.initIngest(s.opts.IngestQueue)
	if def.ID > s.nextMonitor {
		s.nextMonitor = def.ID
	}
	s.monitors[def.ID] = entry
	return nil
}

// replayLog feeds a materialized observation log through the monitor's
// normal insertion path, reconstructing the exact window state the monitor
// held when the log was written.
func replayLog(entry *monitorEntry, log *relation.Relation) error {
	x, err := log.Column("x")
	if err != nil {
		return err
	}
	y, err := log.Column("y")
	if err != nil {
		return err
	}
	n := log.NumRows()
	if entry.kind == "categorical" {
		xs := make([]string, n)
		ys := make([]string, n)
		for i := 0; i < n; i++ {
			xs[i] = x.StringAt(i)
			ys[i] = y.StringAt(i)
		}
		_, err = entry.cat.InsertBatch(context.Background(), xs, ys)
		return err
	}
	_, err = entry.num.InsertBatch(context.Background(), x.Floats(), y.Floats())
	return err
}

// persistObservations durably appends an observe batch to the monitor's
// log and refreshes its definition (the lifetime observed counter lives
// there). Serialized under s.mu so a racing delete or create can never be
// overwritten by a stale definition list.
func (s *Server) persistObservations(m *monitorEntry, xs, ys []string, xf, yf []float64) error {
	if s.store == nil {
		return nil
	}
	kind := store.ColKindNumeric
	if m.kind == "categorical" {
		kind = store.ColKindCategorical
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, live := s.monitors[m.id]; !live {
		// Deleted while the batch was being inserted: nothing to persist,
		// the log is already gone.
		return nil
	}
	if err := s.store.AppendLog(m.id, kind, xs, ys, xf, yf, m.window); err != nil {
		return err
	}
	if m.dataset != "" {
		return s.persistBoundMonitorsLocked(m.dataset)
	}
	return s.persistRegistryLocked()
}

// writeStoreMetrics renders the store gauges for /metrics; without a store
// it writes nothing.
func (s *Server) writeStoreMetrics(w io.Writer) {
	if s.store == nil {
		return
	}
	st, err := s.store.Stats()
	if err != nil {
		fmt.Fprintf(w, "# store stats unavailable: %v\n", err)
		return
	}
	fmt.Fprintf(w, "# HELP scoded_store_datasets Datasets held in the durable store.\n")
	fmt.Fprintf(w, "# TYPE scoded_store_datasets gauge\n")
	fmt.Fprintf(w, "scoded_store_datasets %d\n", st.Datasets)
	fmt.Fprintf(w, "# HELP scoded_store_segments Immutable segment files across all datasets and logs.\n")
	fmt.Fprintf(w, "# TYPE scoded_store_segments gauge\n")
	fmt.Fprintf(w, "scoded_store_segments %d\n", st.Segments)
	fmt.Fprintf(w, "# HELP scoded_store_bytes Bytes of segment data on disk.\n")
	fmt.Fprintf(w, "# TYPE scoded_store_bytes gauge\n")
	fmt.Fprintf(w, "scoded_store_bytes %d\n", st.Bytes)
	fmt.Fprintf(w, "# HELP scoded_store_last_flush_seconds Duration of the most recent durable mutation.\n")
	fmt.Fprintf(w, "# TYPE scoded_store_last_flush_seconds gauge\n")
	fmt.Fprintf(w, "scoded_store_last_flush_seconds %g\n", st.LastFlush.Seconds())
}
