package datasets

import (
	"math"
	"math/rand"
	"strconv"

	"scoded/internal/relation"
)

// NebraskaOptions configures the NEBRASKA generator.
type NebraskaOptions struct {
	// StartYear and EndYear bound the generated years (inclusive); default
	// 1970-1999, the paper's test window.
	StartYear, EndYear int
	// DaysPerYear is the number of daily records per year; defaults to 120
	// (a manageable subsample of a full year).
	DaysPerYear int
	// Seed drives all randomness.
	Seed int64
}

func (o NebraskaOptions) withDefaults() NebraskaOptions {
	if o.StartYear == 0 {
		o.StartYear = 1970
	}
	if o.EndYear == 0 {
		o.EndYear = 1999
	}
	if o.DaysPerYear <= 0 {
		o.DaysPerYear = 120
	}
	return o
}

// NebraskaData is the generated weather table plus per-year error labels.
type NebraskaData struct {
	Rel *relation.Relation
	// Truth marks corrupted records.
	Truth []bool
	// WindErrorYears and SeaErrorYears list the years whose Wind / Sea
	// columns were corrupted (for checking Figure 8's violation spikes).
	WindErrorYears []int
	SeaErrorYears  []int
}

// Nebraska generates the GSOD-weather substitute for the Section 6.2 model
// testing case study. Each record has Year (categorical stratum), Wind and
// Sea (sea-level pressure) numeric features, and a Weather label driven by
// both — so Wind ⊥̸ Weather | Year and Sea ⊥̸ Weather | Year hold on clean
// years. Three documented error mechanisms are planted:
//
//   - 1989: the year's Wind data is missing and imputed to the constant
//     6.07 (the case study's documented error), destroying the
//     Wind-Weather dependence for that year;
//   - 1978: the same constant-imputation mechanism (the second violation
//     year of Figure 8(a));
//   - 1972: Sea pegs at a gross out-of-range constant — a stuck barometer
//     — severing the Sea-Weather dependence for Figure 8(b).
func Nebraska(opts NebraskaOptions) NebraskaData {
	opts = opts.withDefaults()
	rng := rand.New(rand.NewSource(opts.Seed))
	var years []string
	var wind, sea []float64
	var weather []string
	var truth []bool

	out := NebraskaData{WindErrorYears: []int{1978, 1989}, SeaErrorYears: []int{1972}}
	for year := opts.StartYear; year <= opts.EndYear; year++ {
		for day := 0; day < opts.DaysPerYear; day++ {
			season := math.Sin(2 * math.Pi * float64(day) / float64(opts.DaysPerYear))
			w := 6 + 2*rng.NormFloat64() + season
			s := 1013 + 6*rng.NormFloat64() - 2*season
			label := weatherLabel(w, s, rng)
			dirty := false
			switch year {
			case 1989:
				// The case study's documented error: the year's wind data
				// is missing and imputed to the constant 6.07, so knowing
				// Wind gives no information about Weather. (Any clean
				// residue makes detection seed-dependent, because a
				// handful of genuinely dependent records can reach
				// significance in a tiny stratum.)
				w = 6.07
				dirty = true
			case 1978:
				// Whole-year constant imputation: with Wind constant the
				// test table is degenerate (zero degrees of freedom) and
				// the DSC is violated with p = 1 regardless of seed.
				w = 6.07
				dirty = true
			case 1972:
				// Gross out-of-range outliers: the station's barometer
				// pegged at a stuck constant for the year. Full constancy
				// is the only seed-robust mechanism at α = 0.3 — any
				// residual variation leaves at least one degree of
				// freedom, making the year's p-value uniform under
				// independence and the α = 0.3 violation a 70/30 coin
				// flip across seeds (see EXPERIMENTS.md deviations).
				s = 1093
				dirty = true
			}
			years = append(years, strconv.Itoa(year))
			wind = append(wind, w)
			sea = append(sea, s)
			weather = append(weather, label)
			truth = append(truth, dirty)
		}
	}
	out.Rel = relation.MustNew(
		relation.NewCategoricalColumn("Year", years),
		relation.NewNumericColumn("Wind", wind),
		relation.NewNumericColumn("Sea", sea),
		relation.NewCategoricalColumn("Weather", weather),
	)
	out.Truth = truth
	return out
}

// weatherLabel derives the Weather situation from wind and pressure with a
// little noise: low pressure and high wind mean storms, high pressure means
// clear skies.
func weatherLabel(wind, sea float64, rng *rand.Rand) string {
	score := (1013-sea)/6 + (wind-6)/2 + 1.4*rng.NormFloat64()
	switch {
	case score > 1.2:
		return "storm"
	case score > 0.3:
		return "rain"
	case score > -0.6:
		return "cloud"
	default:
		return "clear"
	}
}
