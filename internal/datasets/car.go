package datasets

import (
	"math/rand"

	"scoded/internal/relation"
)

// CarOptions configures the CAR generator.
type CarOptions struct {
	// Copies replicates the factorial design; total rows = 48 * Copies.
	// Defaults to 30 (1440 rows, close to UCI's 1728).
	Copies int
	// Seed drives the small amount of label noise.
	Seed int64
	// LabelNoise is the probability a class label is re-rolled uniformly;
	// defaults to 0.05.
	LabelNoise float64
}

func (o CarOptions) withDefaults() CarOptions {
	if o.Copies <= 0 {
		o.Copies = 30
	}
	if o.LabelNoise <= 0 {
		o.LabelNoise = 0.05
	}
	return o
}

// Car generates the UCI Car Evaluation substitute: a full factorial design
// over Buying Price (BP), Doors (DR) and Safety (SA), with the Class label
// (CL) derived from BP and SA by rule — just as UCI's dataset was generated
// from a hierarchical rule model. Clean data therefore satisfies the two
// Table 3 SCs exactly in structure: BP ⊥̸ CL (the label depends on price)
// and SA ⊥ DR (both are free factorial axes). The UCI original is itself
// synthetic, so this substitution is near-identical in kind.
func Car(opts CarOptions) *relation.Relation {
	opts = opts.withDefaults()
	rng := rand.New(rand.NewSource(opts.Seed))
	bpLevels := []string{"vhigh", "high", "med", "low"}
	drLevels := []string{"2", "3", "4", "5more"}
	saLevels := []string{"low", "med", "high"}
	clLevels := []string{"unacc", "acc", "good", "vgood"}

	var bp, dr, sa, cl []string
	for copy := 0; copy < opts.Copies; copy++ {
		for _, b := range bpLevels {
			for _, d := range drLevels {
				for _, s := range saLevels {
					label := carClass(b, s)
					if rng.Float64() < opts.LabelNoise {
						label = clLevels[rng.Intn(len(clLevels))]
					}
					bp = append(bp, b)
					dr = append(dr, d)
					sa = append(sa, s)
					cl = append(cl, label)
				}
			}
		}
	}
	return relation.MustNew(
		relation.NewCategoricalColumn("BP", bp),
		relation.NewCategoricalColumn("DR", dr),
		relation.NewCategoricalColumn("SA", sa),
		relation.NewCategoricalColumn("CL", cl),
	)
}

// carClass mimics the UCI rule hierarchy: low safety is unacceptable;
// otherwise cheaper cars with better safety score higher.
func carClass(bp, sa string) string {
	if sa == "low" {
		return "unacc"
	}
	price := map[string]int{"vhigh": 0, "high": 1, "med": 2, "low": 3}[bp]
	bonus := 0
	if sa == "high" {
		bonus = 1
	}
	switch price + bonus {
	case 0:
		return "unacc"
	case 1:
		return "acc"
	case 2:
		return "acc"
	case 3:
		return "good"
	default:
		return "vgood"
	}
}
