package datasets

import (
	"testing"

	"scoded/internal/detect"
	"scoded/internal/ic"
	"scoded/internal/sc"
)

func TestSensorStructure(t *testing.T) {
	d := Sensor(SensorOptions{Hours: 800, ErrorRate: 0.15, Seed: 1})
	if d.Rel.NumRows() != 800 {
		t.Fatalf("rows = %d", d.Rel.NumRows())
	}
	// Each of the three sensors gets 15% imputed rows; overlaps make the
	// union land between 120 (fully overlapping) and 360.
	nErr := 0
	for _, e := range d.Truth {
		if e {
			nErr++
		}
	}
	if nErr < 120 || nErr > 360 {
		t.Errorf("errors = %d, want within [120, 360]", nErr)
	}
	// Pairs stay strongly dependent despite the imputation.
	res, err := detect.Check(d.Rel, sc.Approximate{SC: sc.MustParse("T7 ~||~ T9"), Alpha: 0.05}, detect.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Violated {
		t.Errorf("T7 ~||~ T9 should hold (p=%v)", res.Test.P)
	}
	// Determinism.
	d2 := Sensor(SensorOptions{Hours: 800, ErrorRate: 0.15, Seed: 1})
	if d2.Rel.MustColumn("T8").Value(3) != d.Rel.MustColumn("T8").Value(3) {
		t.Error("generator not deterministic")
	}
}

func TestSensorImputationWeakensDependence(t *testing.T) {
	clean := Sensor(SensorOptions{Hours: 800, ErrorRate: 0.0001, Seed: 2})
	dirty := Sensor(SensorOptions{Hours: 800, ErrorRate: 0.4, Seed: 2})
	tau := func(d Dirty) float64 {
		res, err := detect.Check(d.Rel, sc.Approximate{SC: sc.MustParse("T8 ~||~ T9"), Alpha: 0.3}, detect.Options{})
		if err != nil {
			t.Fatal(err)
		}
		return res.Test.Statistic
	}
	if tau(dirty) >= tau(clean) {
		t.Errorf("imputation should weaken |tau|: clean %v, dirty %v", tau(clean), tau(dirty))
	}
}

func TestHospStructure(t *testing.T) {
	d := Hosp(HospOptions{Rows: 2000, Seed: 3})
	if d.Rel.NumRows() != 2000 {
		t.Fatalf("rows = %d", d.Rel.NumRows())
	}
	// Roughly 10% of rows are corrupted (5% LHS + 5% RHS).
	nErr := 0
	for _, e := range d.Truth {
		if e {
			nErr++
		}
	}
	if nErr < 150 || nErr > 250 {
		t.Errorf("errors = %d, want ~200", nErr)
	}
	// The FD must be approximate, not exact, and within a plausible band.
	ratio, err := ic.FD{LHS: []string{"Zip"}, RHS: []string{"City"}}.ApproximationRatio(d.Rel)
	if err != nil {
		t.Fatal(err)
	}
	if ratio <= 0 || ratio > 0.15 {
		t.Errorf("approximation ratio = %v", ratio)
	}
	// Clean generation satisfies the FD exactly.
	clean := Hosp(HospOptions{Rows: 2000, Seed: 3, RHSRate: 1e-9, LHSRate: 1e-9})
	// (rates clamp to at least 1 row each, so allow <= 2 violating rows)
	cr, _ := ic.FD{LHS: []string{"Zip"}, RHS: []string{"City"}}.ApproximationRatio(clean.Rel)
	if cr > 0.002 {
		t.Errorf("near-clean approximation ratio = %v", cr)
	}
}

func TestHospLHSTyposAreSingletons(t *testing.T) {
	d := Hosp(HospOptions{Rows: 1000, Seed: 4})
	zip := d.Rel.MustColumn("Zip")
	groups := d.Rel.GroupBy([]string{"Zip"})
	// Every mangled zip (contains '~') must form a singleton group.
	for key, rows := range groups {
		if len(rows) == 1 && !containsTilde(zip.StringAt(rows[0])) {
			continue // legitimately rare zip is fine
		}
		if containsTilde(key) && len(rows) != 1 {
			t.Errorf("mangled zip %q has %d rows", key, len(rows))
		}
	}
}

func containsTilde(s string) bool {
	for i := 0; i < len(s); i++ {
		if s[i] == '~' {
			return true
		}
	}
	return false
}

func TestHockeyStructure(t *testing.T) {
	d := Hockey(HockeyOptions{Players: 1500, Seed: 5})
	if d.Rel.NumRows() != 1500 {
		t.Fatalf("rows = %d", d.Rel.NumRows())
	}
	// Every corrupted record has GPM = 0, Games > 0, DraftYear < 2000 —
	// the Figure 7 signature.
	gpm := d.Rel.MustColumn("GPM")
	games := d.Rel.MustColumn("Games")
	year := d.Rel.MustColumn("DraftYear")
	for i, isErr := range d.Truth {
		if !isErr {
			if gpm.Value(i) == 0 {
				t.Errorf("clean row %d has GPM=0; zeros must identify errors", i)
			}
			continue
		}
		if gpm.Value(i) != 0 {
			t.Errorf("error row %d has GPM=%v", i, gpm.Value(i))
		}
		if games.Value(i) <= 0 {
			t.Errorf("error row %d has Games=%v", i, games.Value(i))
		}
		if y := year.StringAt(i); y != "1998" && y != "1999" {
			t.Errorf("error row %d has DraftYear=%s", i, y)
		}
	}
	// The imputation plants a conditional dependence Games ⊥̸ GPM |
	// DraftYear. The dependence is non-monotone (GPM = 0 sits mid-range),
	// so the G-test — not Kendall — is the right instrument, as in the
	// case study's Bayesian-network discovery.
	res, err := detect.Check(d.Rel, sc.Approximate{SC: sc.MustParse("Games _||_ GPM | DraftYear"), Alpha: 0.01},
		detect.Options{Method: detect.G})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Violated {
		t.Errorf("spurious dependence not detectable (p=%v)", res.Test.P)
	}
}

func TestCarStructure(t *testing.T) {
	d := Car(CarOptions{Copies: 20, Seed: 6})
	if d.NumRows() != 20*48 {
		t.Fatalf("rows = %d", d.NumRows())
	}
	// BP ⊥̸ CL must hold on clean data.
	dep, err := detect.Check(d, sc.Approximate{SC: sc.MustParse("BP ~||~ CL"), Alpha: 0.05}, detect.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if dep.Violated {
		t.Errorf("BP ~||~ CL should hold on clean CAR data (p=%v)", dep.Test.P)
	}
	// SA ⊥ DR must hold (free factorial axes).
	ind, err := detect.Check(d, sc.Approximate{SC: sc.MustParse("SA _||_ DR"), Alpha: 0.05}, detect.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if ind.Violated {
		t.Errorf("SA _||_ DR should hold on clean CAR data (p=%v)", ind.Test.P)
	}
}

func TestBostonStructure(t *testing.T) {
	d := Boston(BostonOptions{Seed: 7})
	if d.NumRows() != 506 {
		t.Fatalf("rows = %d", d.NumRows())
	}
	check := func(expr string, alpha float64, wantViolated bool) {
		t.Helper()
		res, err := detect.Check(d, sc.Approximate{SC: sc.MustParse(expr), Alpha: alpha}, detect.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if res.Violated != wantViolated {
			t.Errorf("%s: violated=%v (p=%v), want %v", expr, res.Violated, res.Test.P, wantViolated)
		}
	}
	check("N ~||~ D", 0.05, false)  // strong dependence present
	check("R _||_ B", 0.05, false)  // independence holds
	check("TX ~||~ B", 0.05, false) // dependence present
}

func TestBostonConditionalStructure(t *testing.T) {
	// Conditional constraints of Table 3 on a larger sample for stable
	// strata.
	d := Replicate(Boston(BostonOptions{Seed: 8}), 4)
	res, err := detect.Check(d, sc.Approximate{SC: sc.MustParse("N _||_ B | TX"), Alpha: 0.01},
		detect.Options{Bins: 4})
	if err != nil {
		t.Fatal(err)
	}
	if res.Violated {
		t.Errorf("N _||_ B | TX should hold (p=%v)", res.Test.P)
	}
}

func TestReplicate(t *testing.T) {
	d := Boston(BostonOptions{Rows: 100, Seed: 9})
	r := Replicate(d, 3)
	if r.NumRows() != 300 {
		t.Fatalf("rows = %d", r.NumRows())
	}
	if r.MustColumn("D").Value(100) != d.MustColumn("D").Value(0) {
		t.Error("replica 2 should repeat the original")
	}
	one := Replicate(d, 1)
	if one.NumRows() != 100 {
		t.Error("copies=1 should clone")
	}
}

func TestNebraskaStructure(t *testing.T) {
	nd := Nebraska(NebraskaOptions{Seed: 10})
	if nd.Rel.NumRows() != 30*120 {
		t.Fatalf("rows = %d", nd.Rel.NumRows())
	}
	// Clean years satisfy Wind ~||~ Weather within the year.
	groups := nd.Rel.GroupBy([]string{"Year"})
	for _, year := range []string{"1975", "1985", "1995"} {
		sub := nd.Rel.Subset(groups[year])
		res, err := detect.Check(sub, sc.Approximate{SC: sc.MustParse("Wind ~||~ Weather"), Alpha: 0.3}, detect.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if res.Violated {
			t.Errorf("year %s: Wind ~||~ Weather should hold (p=%v)", year, res.Test.P)
		}
	}
	// 1989 (constant imputation) violates it.
	sub := nd.Rel.Subset(groups["1989"])
	res, err := detect.Check(sub, sc.Approximate{SC: sc.MustParse("Wind ~||~ Weather"), Alpha: 0.3}, detect.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Violated {
		t.Errorf("1989 should violate the DSC (p=%v)", res.Test.P)
	}
	// 1972 violates the Sea DSC.
	sub = nd.Rel.Subset(groups["1972"])
	res, err = detect.Check(sub, sc.Approximate{SC: sc.MustParse("Sea ~||~ Weather"), Alpha: 0.3}, detect.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Violated {
		t.Errorf("1972 should violate the Sea DSC (p=%v)", res.Test.P)
	}
	// A clean year satisfies the Sea DSC.
	sub = nd.Rel.Subset(groups["1990"])
	res, _ = detect.Check(sub, sc.Approximate{SC: sc.MustParse("Sea ~||~ Weather"), Alpha: 0.3}, detect.Options{})
	if res.Violated {
		t.Errorf("1990 should satisfy the Sea DSC (p=%v)", res.Test.P)
	}
}
