// Package datasets provides seeded synthetic equivalents of the six
// real-world evaluation datasets of Section 6.1 — SENSOR, HOSP, HOCKEY,
// CAR, BOSTON and NEBRASKA. We cannot ship the originals, so each generator
// reproduces the statistical mechanism its experiments exercise (see
// DESIGN.md §2 for the per-dataset substitution argument). Every generator
// takes an explicit seed and is fully deterministic.
//
// Where an experiment needs ground-truth error labels, the generator either
// plants the errors itself (Sensor, Hosp, Hockey, Nebraska — errors that
// mimic the documented real-world ones) or returns clean data for
// errgen-driven injection (Boston, Car).
package datasets

import (
	"math"
	"math/rand"

	"scoded/internal/relation"
)

// Dirty bundles a generated relation with its ground-truth error labels.
type Dirty struct {
	Rel *relation.Relation
	// Truth[i] is true when record i was corrupted.
	Truth []bool
}

// SensorOptions configures the SENSOR generator.
type SensorOptions struct {
	// Hours is the number of hourly readings per sensor; defaults to 1000.
	Hours int
	// ErrorRate is the fraction of T8 readings replaced by the column mean
	// (the paper's "remove outliers then impute" preprocessing error);
	// defaults to 0.15.
	ErrorRate float64
	// Seed drives all randomness.
	Seed int64
}

func (o SensorOptions) withDefaults() SensorOptions {
	if o.Hours <= 0 {
		o.Hours = 1000
	}
	if o.ErrorRate <= 0 {
		o.ErrorRate = 0.15
	}
	return o
}

// Sensor generates the Intel-Lab-style sensor substitute: three neighbouring
// sensors T7, T8, T9 reading a shared latent temperature signal (daily
// cycle plus weather drift) with per-sensor calibration offsets and noise,
// so each pair is strongly dependent — the T_a ⊥̸ T_b SCs of Table 3. Each
// sensor then has a random fraction of its readings mean-imputed, mimicking
// the dataset's documented outlier-removal + imputation preprocessing. The
// imputed values sit at the column mean — the kind of "looks normal" error
// a per-column outlier model misses (Section 6.3).
func Sensor(opts SensorOptions) Dirty {
	opts = opts.withDefaults()
	rng := rand.New(rand.NewSource(opts.Seed))
	n := opts.Hours
	cols := [3][]float64{}
	offsets := [3]float64{-0.3, 0, 0.3}
	for s := range cols {
		cols[s] = make([]float64, n)
	}
	drift := 0.0
	for i := 0; i < n; i++ {
		// Daily cycle (24-hour period) plus a slow random-walk weather
		// drift.
		base := 20 + 4*math.Sin(2*math.Pi*float64(i)/24) + drift
		drift += 0.05 * rng.NormFloat64()
		for s := range cols {
			cols[s][i] = base + offsets[s] + 0.25*rng.NormFloat64()
		}
	}
	// Mean-impute a random subset of every sensor, each at the error rate.
	truth := make([]bool, n)
	count := int(opts.ErrorRate * float64(n))
	for s := range cols {
		mean := 0.0
		for _, v := range cols[s] {
			mean += v
		}
		mean /= float64(n)
		for _, r := range rng.Perm(n)[:count] {
			cols[s][r] = mean
			truth[r] = true
		}
	}
	rel := relation.MustNew(
		relation.NewNumericColumn("T7", cols[0]),
		relation.NewNumericColumn("T8", cols[1]),
		relation.NewNumericColumn("T9", cols[2]),
	)
	return Dirty{Rel: rel, Truth: truth}
}

// HospOptions configures the HOSP generator.
type HospOptions struct {
	// Rows is the record count; defaults to 5000.
	Rows int
	// Zips is the number of distinct zip codes; defaults to 80.
	Zips int
	// RHSRate is the fraction of rows given a City/State typo (an FD
	// right-hand-side violation); defaults to 0.05.
	RHSRate float64
	// LHSRate is the fraction of rows given a Zip typo (a mistyped zip
	// landing in a singleton group — invisible to AFD ranking); defaults
	// to 0.05.
	LHSRate float64
	// Seed drives all randomness.
	Seed int64
}

func (o HospOptions) withDefaults() HospOptions {
	if o.Rows <= 0 {
		o.Rows = 5000
	}
	if o.Zips <= 0 {
		o.Zips = 80
	}
	if o.RHSRate <= 0 {
		o.RHSRate = 0.05
	}
	if o.LHSRate <= 0 {
		o.LHSRate = 0.05
	}
	return o
}

// Hosp generates the hospital-directory substitute: records with Zip, City
// and State columns where Zip → City and Zip → State hold on clean data
// (each zip maps to one city; cities group into states). Two error kinds
// are planted, matching the Figure 12 analysis. Right-hand-side errors
// replace the City and State with a different existing value (a data-swap
// error): the record becomes the minority of its zip group, so both AFD
// violation counting and the FD→DSC drill-down (the record's cell is
// heavily under-represented) rank it early. Left-hand-side errors corrupt
// the Zip itself into a fresh unique value: the record forms a singleton
// group with zero FD violations — invisible to AFD, which ranks it dead
// last — while its cell contribution to the G statistic is far below any
// clean cell's, so SCODED's drill-down reaches it before the clean mass.
// This asymmetry produces the Figure 12 crossover.
func Hosp(opts HospOptions) Dirty {
	opts = opts.withDefaults()
	rng := rand.New(rand.NewSource(opts.Seed))
	nCities := opts.Zips/4 + 1
	nStates := nCities/5 + 1
	cityOf := make([]int, opts.Zips)
	stateOf := make([]int, nCities)
	for z := range cityOf {
		cityOf[z] = rng.Intn(nCities)
	}
	for c := range stateOf {
		stateOf[c] = rng.Intn(nStates)
	}
	zipName := func(z int) string { return "97" + threeDigits(z) }
	cityName := func(c int) string { return "City" + threeDigits(c) }
	stateName := func(s int) string { return "State" + threeDigits(s) }

	n := opts.Rows
	zips := make([]string, n)
	zipIdx := make([]int, n)
	cities := make([]string, n)
	states := make([]string, n)
	truth := make([]bool, n)
	for i := 0; i < n; i++ {
		z := rng.Intn(opts.Zips)
		c := cityOf[z]
		zips[i] = zipName(z)
		zipIdx[i] = z
		cities[i] = cityName(c)
		states[i] = stateName(stateOf[c])
	}
	// RHS swap errors: replace City and State with different existing
	// values.
	nRHS := int(opts.RHSRate * float64(n))
	perm := rng.Perm(n)
	typoSeq := 0
	for _, r := range perm[:nRHS] {
		trueCity := cityOf[zipIdx[r]]
		cities[r] = cityName(otherThan(rng, nCities, trueCity))
		states[r] = stateName(otherThan(rng, nStates, stateOf[trueCity]))
		truth[r] = true
	}
	// LHS typos: corrupt the Zip into a fresh singleton value.
	nLHS := int(opts.LHSRate * float64(n))
	for _, r := range perm[nRHS : nRHS+nLHS] {
		zips[r] = mangle(zips[r], &typoSeq)
		truth[r] = true
	}
	rel := relation.MustNew(
		relation.NewCategoricalColumn("Zip", zips),
		relation.NewCategoricalColumn("City", cities),
		relation.NewCategoricalColumn("State", states),
	)
	return Dirty{Rel: rel, Truth: truth}
}

func threeDigits(v int) string {
	return string([]byte{byte('0' + (v/100)%10), byte('0' + (v/10)%10), byte('0' + v%10)})
}

// mangle introduces a typo by appending a '~' marker and a unique sequence
// number, so each typo is a distinct value — in particular every mangled
// zip forms its own singleton FD group, the AFD blind spot of Figure 12.
func mangle(s string, seq *int) string {
	*seq++
	return s + "~" + threeDigits(*seq) + threeDigits(*seq/1000)
}

// otherThan draws a value in [0, n) different from the given one (assuming
// n >= 2).
func otherThan(rng *rand.Rand, n, not int) int {
	if n < 2 {
		return not
	}
	v := rng.Intn(n - 1)
	if v >= not {
		v++
	}
	return v
}
