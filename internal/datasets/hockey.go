package datasets

import (
	"math"
	"math/rand"
	"strconv"

	"scoded/internal/relation"
)

// HockeyOptions configures the HOCKEY generator.
type HockeyOptions struct {
	// Players is the record count; defaults to 2000.
	Players int
	// ImputeRate is the probability that a pre-2000 draftee who made the
	// NHL (Games > 0) has its GPM imputed to 0; defaults to 0.85.
	ImputeRate float64
	// Seed drives all randomness.
	Seed int64
}

func (o HockeyOptions) withDefaults() HockeyOptions {
	if o.Players <= 0 {
		o.Players = 2000
	}
	if o.ImputeRate <= 0 {
		o.ImputeRate = 0.85
	}
	return o
}

// Hockey generates the NHL-draftee substitute for the Section 6.2 model
// construction case study. Each record has DraftYear (1998-2010), GPM (the
// player's pre-NHL plus-minus) and Games (NHL games played). In the clean
// world GPM carries no information about Games once DraftYear is known —
// the domain knowledge of the case study [41]. The planted error reproduces
// the real dataset's documented flaw: for draft years before 2000 the
// provider lost pre-NHL plus-minus records of players who reached the NHL
// and imputed GPM = 0, creating a spurious strong dependence
// Games ⊥̸ GPM | DraftYear whose top-50 drill-down surfaces records with
// GPM = 0, Games > 0 and DraftYear < 2000 (Figure 7).
func Hockey(opts HockeyOptions) Dirty {
	opts = opts.withDefaults()
	rng := rand.New(rand.NewSource(opts.Seed))
	n := opts.Players
	years := make([]string, n)
	gpm := make([]float64, n)
	games := make([]float64, n)
	truth := make([]bool, n)
	for i := 0; i < n; i++ {
		year := 1998 + rng.Intn(13)
		years[i] = strconv.Itoa(year)
		// Latent skill drives Games; GPM is an independent junior-league
		// statistic.
		skill := rng.NormFloat64()
		gpm[i] = math.Round(3 * rng.NormFloat64())
		//scoded:lint-ignore floatcmp math.Round yields exact integers, so the zero test is exact
		if gpm[i] == 0 {
			gpm[i] = 1 // keep honest zeros out so imputed zeros are identifiable errors
		}
		if skill > 0.3 {
			games[i] = math.Round(200 + 150*skill + 30*rng.NormFloat64())
			if games[i] < 1 {
				games[i] = 1
			}
		} else {
			games[i] = 0
		}
		// The provider's imputation: early draft years lost the GPM of
		// players who made the NHL.
		if year < 2000 && games[i] > 0 && rng.Float64() < opts.ImputeRate {
			gpm[i] = 0
			truth[i] = true
		}
	}
	rel := relation.MustNew(
		relation.NewCategoricalColumn("DraftYear", years),
		relation.NewNumericColumn("GPM", gpm),
		relation.NewNumericColumn("Games", games),
	)
	return Dirty{Rel: rel, Truth: truth}
}
