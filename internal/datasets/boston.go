package datasets

import (
	"math"
	"math/rand"

	"scoded/internal/relation"
)

// BostonOptions configures the BOSTON generator.
type BostonOptions struct {
	// Rows is the record count; the original has 506. Figure 14 enlarges
	// the dataset by concatenation, which Replicate supports.
	Rows int
	// Seed drives all randomness.
	Seed int64
}

func (o BostonOptions) withDefaults() BostonOptions {
	if o.Rows <= 0 {
		o.Rows = 506
	}
	return o
}

// Boston generates the Boston-housing substitute with the six columns the
// paper uses — Distance (D), N_oxide (N), Crime (C), Black index (B),
// Rooms (R), Tax (TX) — wired to reproduce the constraint structure of
// Table 3:
//
//	N ⊥̸ D        nitric oxide concentration falls with distance from CBD
//	R ⊥ B        rooms carry no information about the black index
//	TX ⊥̸ B | C   tax and black index remain dependent within crime strata
//	N ⊥ B | TX   nitric oxide and black index touch only through tax
//
// The actual census values do not matter for Figures 10/11/14; only this
// dependence/independence pattern does. Data is returned clean; the
// experiments inject errors with errgen.
func Boston(opts BostonOptions) *relation.Relation {
	opts = opts.withDefaults()
	rng := rand.New(rand.NewSource(opts.Seed))
	n := opts.Rows
	d := make([]float64, n)
	nox := make([]float64, n)
	crime := make([]float64, n)
	black := make([]float64, n)
	rooms := make([]float64, n)
	tax := make([]float64, n)
	for i := 0; i < n; i++ {
		// Distance to CBD, log-normal-ish.
		d[i] = math.Exp(1 + 0.5*rng.NormFloat64())
		// Nitric oxide falls with distance: the N ⊥̸ D dependence. The
		// noise level keeps the dependence clearly detectable (tau ~ -0.5)
		// while leaving room for error types to differ in difficulty, as
		// in the paper's Figure 10.
		nox[i] = 0.8 - 0.06*d[i] + 0.08*rng.NormFloat64()
		// Crime concentrates near the center.
		crime[i] = math.Max(0, 3-0.5*d[i]+rng.NormFloat64())
		// Black index: independent of rooms, driven by its own factor.
		black[i] = 300 + 60*rng.NormFloat64()
		// Rooms: independent of the black index.
		rooms[i] = 6 + rng.NormFloat64()
		// Tax: tied to the black index and crime (so TX ⊥̸ B survives
		// conditioning on C) but not to nitric oxide directly, giving
		// N ⊥ B | TX its mediated structure.
		tax[i] = 200 + 0.5*black[i] + 20*crime[i] + 15*rng.NormFloat64()
	}
	return relation.MustNew(
		relation.NewNumericColumn("D", d),
		relation.NewNumericColumn("N", nox),
		relation.NewNumericColumn("C", crime),
		relation.NewNumericColumn("B", black),
		relation.NewNumericColumn("R", rooms),
		relation.NewNumericColumn("TX", tax),
	)
}

// Replicate concatenates `copies` clones of the relation, the paper's
// Figure 14 scaling method ("we concatenated copies of the Boston dataset
// to enlarge its data size").
func Replicate(r *relation.Relation, copies int) *relation.Relation {
	if copies <= 1 {
		return r.Clone()
	}
	rows := make([]int, 0, r.NumRows()*copies)
	for c := 0; c < copies; c++ {
		for i := 0; i < r.NumRows(); i++ {
			rows = append(rows, i)
		}
	}
	return r.Subset(rows)
}
