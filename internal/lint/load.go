package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Package is one type-checked module package: syntax plus types.
type Package struct {
	// ImportPath is the package's module-relative import path.
	ImportPath string
	// Dir is the absolute directory holding the package's sources.
	Dir string
	// Files are the parsed non-test sources, in filename order.
	Files []*ast.File
	// Types is the type-checked package.
	Types *types.Package
	// Info carries the expression types, definitions, and uses.
	Info *types.Info
	// TypeErrors collects type-checking failures; analyzers still run on a
	// partially-checked package, but the driver reports these separately.
	TypeErrors []error
}

// Module is a loaded Go module: every non-test package, type-checked in
// dependency order against a shared FileSet.
type Module struct {
	// Root is the absolute directory containing go.mod.
	Root string
	// Path is the module path declared in go.mod.
	Path string
	// Fset positions every parsed file.
	Fset *token.FileSet

	pkgs  map[string]*Package // by import path
	order []string            // topological (dependencies first)
	std   types.Importer
}

// Packages returns the module's packages in dependency order.
func (m *Module) Packages() []*Package {
	out := make([]*Package, 0, len(m.order))
	for _, p := range m.order {
		out = append(out, m.pkgs[p])
	}
	return out
}

// Lookup returns the package with the given import path, if loaded.
func (m *Module) Lookup(path string) (*Package, bool) {
	p, ok := m.pkgs[path]
	return p, ok
}

var moduleDirective = regexp.MustCompile(`(?m)^module\s+(\S+)`)

// FindModuleRoot walks up from dir to the nearest directory with a go.mod.
func FindModuleRoot(dir string) (root, modPath string, err error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for d := abs; ; d = filepath.Dir(d) {
		data, err := os.ReadFile(filepath.Join(d, "go.mod"))
		if err == nil {
			m := moduleDirective.FindSubmatch(data)
			if m == nil {
				return "", "", fmt.Errorf("lint: %s/go.mod has no module directive", d)
			}
			return d, string(m[1]), nil
		}
		if parent := filepath.Dir(d); parent == d {
			return "", "", fmt.Errorf("lint: no go.mod found above %s", abs)
		}
	}
}

// LoadModule discovers, parses, and type-checks every non-test package
// under the module containing dir. Parse errors abort the load; type errors
// are recorded per package so the driver can report them all at once.
func LoadModule(dir string) (*Module, error) {
	root, modPath, err := FindModuleRoot(dir)
	if err != nil {
		return nil, err
	}
	m := &Module{
		Root: root,
		Path: modPath,
		Fset: token.NewFileSet(),
		pkgs: make(map[string]*Package),
		std:  importer.Default(),
	}

	// Discover package directories: any directory under the root holding at
	// least one non-test .go file, skipping hidden, vendor, and testdata
	// trees (testdata holds the analyzer fixtures, which intentionally
	// violate the invariants).
	err = filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != root && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") ||
			name == "vendor" || name == "testdata") {
			return filepath.SkipDir
		}
		files, err := packageGoFiles(path)
		if err != nil {
			return err
		}
		if len(files) == 0 {
			return nil
		}
		rel, err := filepath.Rel(root, path)
		if err != nil {
			return err
		}
		importPath := modPath
		if rel != "." {
			importPath = modPath + "/" + filepath.ToSlash(rel)
		}
		pkg, err := m.parseDir(importPath, path, files)
		if err != nil {
			return err
		}
		m.pkgs[importPath] = pkg
		return nil
	})
	if err != nil {
		return nil, err
	}

	if err := m.sortPackages(); err != nil {
		return nil, err
	}
	for _, path := range m.order {
		m.typeCheck(m.pkgs[path])
	}
	return m, nil
}

// packageGoFiles lists the non-test .go files of a directory in sorted
// order.
func packageGoFiles(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		files = append(files, filepath.Join(dir, name))
	}
	sort.Strings(files)
	return files, nil
}

// parseDir parses one directory's files into a Package (types filled in
// later by typeCheck).
func (m *Module) parseDir(importPath, dir string, files []string) (*Package, error) {
	pkg := &Package{ImportPath: importPath, Dir: dir}
	for _, f := range files {
		af, err := parser.ParseFile(m.Fset, f, nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("lint: %w", err)
		}
		pkg.Files = append(pkg.Files, af)
	}
	return pkg, nil
}

// moduleImports lists a package's intra-module dependencies.
func (m *Module) moduleImports(pkg *Package) []string {
	var deps []string
	seen := make(map[string]bool)
	for _, f := range pkg.Files {
		for _, imp := range f.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			if path != m.Path && !strings.HasPrefix(path, m.Path+"/") {
				continue
			}
			if !seen[path] {
				seen[path] = true
				deps = append(deps, path)
			}
		}
	}
	sort.Strings(deps)
	return deps
}

// sortPackages orders m.pkgs topologically so every package is checked
// after its intra-module dependencies.
func (m *Module) sortPackages() error {
	const (
		unvisited = 0
		visiting  = 1
		done      = 2
	)
	state := make(map[string]int, len(m.pkgs))
	paths := make([]string, 0, len(m.pkgs))
	for p := range m.pkgs {
		paths = append(paths, p)
	}
	sort.Strings(paths)

	var visit func(path string) error
	visit = func(path string) error {
		switch state[path] {
		case done:
			return nil
		case visiting:
			return fmt.Errorf("lint: import cycle through %s", path)
		}
		state[path] = visiting
		for _, dep := range m.moduleImports(m.pkgs[path]) {
			if _, ok := m.pkgs[dep]; !ok {
				return fmt.Errorf("lint: %s imports %s, which has no sources in the module", path, dep)
			}
			if err := visit(dep); err != nil {
				return err
			}
		}
		state[path] = done
		m.order = append(m.order, path)
		return nil
	}
	for _, p := range paths {
		if err := visit(p); err != nil {
			return err
		}
	}
	return nil
}

// Import resolves an import for the type checker: intra-module packages
// come from the loaded module, everything else (the standard library) from
// the toolchain's default importer.
func (m *Module) Import(path string) (*types.Package, error) {
	if pkg, ok := m.pkgs[path]; ok {
		if pkg.Types == nil {
			return nil, fmt.Errorf("lint: import %s before it was checked", path)
		}
		return pkg.Types, nil
	}
	return m.std.Import(path)
}

// typeCheck runs go/types over one parsed package, collecting rather than
// aborting on type errors.
func (m *Module) typeCheck(pkg *Package) {
	pkg.Info = &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{
		Importer: m,
		Error:    func(err error) { pkg.TypeErrors = append(pkg.TypeErrors, err) },
	}
	tp, err := conf.Check(pkg.ImportPath, m.Fset, pkg.Files, pkg.Info)
	if err != nil && len(pkg.TypeErrors) == 0 {
		pkg.TypeErrors = append(pkg.TypeErrors, err)
	}
	pkg.Types = tp
}

// CheckDir parses and type-checks one extra directory (an analyzer fixture
// under testdata/) as its own package against the already-loaded module.
// The fixture may import module packages; it is not registered in the
// module, so repeated calls are independent.
func (m *Module) CheckDir(dir string) (*Package, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	files, err := packageGoFiles(abs)
	if err != nil {
		return nil, err
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("lint: no .go files in %s", abs)
	}
	importPath := "fixture/" + filepath.Base(abs)
	pkg, err := m.parseDir(importPath, abs, files)
	if err != nil {
		return nil, err
	}
	for _, dep := range m.moduleImports(pkg) {
		if p, ok := m.pkgs[dep]; !ok || p.Types == nil {
			return nil, fmt.Errorf("lint: fixture %s imports unloaded package %s", abs, dep)
		}
	}
	m.typeCheck(pkg)
	return pkg, nil
}
