package lint

import "testing"

func TestAllocHotFixture(t *testing.T) {
	runWantTest(t, AllocHotAnalyzer, "allochot")
}

func TestFloatCmpFixture(t *testing.T) {
	runWantTest(t, FloatCmpAnalyzer, "floatcmp")
}

func TestGlobalRandFixture(t *testing.T) {
	runWantTest(t, GlobalRandAnalyzer, "globalrand")
}

func TestResultErrFixture(t *testing.T) {
	runWantTest(t, ResultErrAnalyzer, "resulterr")
}

func TestHandlerHygieneFixture(t *testing.T) {
	runWantTest(t, HandlerHygieneAnalyzer, "handlerhygiene")
}

func TestCtxFirstFixture(t *testing.T) {
	runWantTest(t, CtxFirstAnalyzer, "ctxfirst")
}

func TestCloseCheckFixture(t *testing.T) {
	runWantTest(t, CloseCheckAnalyzer, "closecheck")
}

func TestLockBalanceFixture(t *testing.T) {
	runWantTest(t, LockBalanceAnalyzer, "lockbalance")
}

func TestGoroLeakFixture(t *testing.T) {
	runWantTest(t, GoroLeakAnalyzer, "goroleak")
}

func TestErrFlowFixture(t *testing.T) {
	runWantTest(t, ErrFlowAnalyzer, "errflow")
}

func TestDeferLoopFixture(t *testing.T) {
	runWantTest(t, DeferLoopAnalyzer, "deferloop")
}

// TestFixturesNonEmpty guards against a fixture silently parsing to nothing
// (which would make its want test pass vacuously).
func TestFixturesNonEmpty(t *testing.T) {
	mod := sharedModule(t)
	for _, fixture := range []string{
		"allochot", "floatcmp", "globalrand", "resulterr", "handlerhygiene", "ctxfirst",
		"closecheck", "lockbalance", "goroleak", "errflow", "deferloop",
	} {
		pkg, err := mod.CheckDir("testdata/" + fixture)
		if err != nil {
			t.Fatalf("%s: %v", fixture, err)
		}
		if n := countFuncs(pkg); n < 3 {
			t.Errorf("fixture %s has only %d functions; expected a bad/good mix", fixture, n)
		}
	}
}
