package lint

import (
	"bytes"
	"encoding/json"
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

// TestModuleClean is the self-hosting gate: the repository's own tree must
// carry no findings (fix or justify everything before landing). It is the
// test-suite twin of the `scoded-lint ./...` step in scripts/ci.sh.
func TestModuleClean(t *testing.T) {
	mod := sharedModule(t)
	res, err := Run(Config{Dir: mod.Root})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	for _, e := range res.TypeErrors {
		t.Errorf("type error: %s", e)
	}
	for _, d := range res.Diagnostics {
		t.Errorf("finding: %s", d)
	}
	if res.Packages < 10 {
		t.Errorf("analyzed only %d packages; module discovery is broken", res.Packages)
	}
}

func TestUnknownAnalyzer(t *testing.T) {
	if _, err := Run(Config{Analyzers: []string{"nope"}}); err == nil {
		t.Fatal("expected error for unknown analyzer")
	}
}

func TestPatternMatchesNothing(t *testing.T) {
	if _, err := Run(Config{Patterns: []string{"./no-such-dir"}}); err == nil {
		t.Fatal("expected error for unmatched pattern")
	}
}

func TestPatternSinglePackage(t *testing.T) {
	res, err := Run(Config{Patterns: []string{"."}})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Packages != 1 {
		t.Fatalf("pattern \".\" matched %d packages, want 1", res.Packages)
	}
}

func TestIgnoreDirectives(t *testing.T) {
	const src = `package p

//scoded:lint-ignore floatcmp exact sentinel comparison
var a = 1

//scoded:lint-ignore floatcmp
var b = 2

//scoded:lint-ignore floatcmp,globalrand shared justification
var c = 3
`
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "ignore_fixture.go", src, parser.ParseComments)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	set := &ignoreSet{}
	collectIgnores(fset, []*ast.File{f}, set)

	if len(set.malformed) != 1 {
		t.Fatalf("malformed directives: got %d, want 1", len(set.malformed))
	}
	if !strings.Contains(set.malformed[0].Message, "reason") {
		t.Errorf("malformed message %q should mention the missing reason", set.malformed[0].Message)
	}

	// A diagnostic on the line after the directive (line 4) is suppressed.
	d := Diagnostic{Analyzer: "floatcmp", Pos: position(fset, "ignore_fixture.go", 4)}
	if !set.suppressed(d) {
		t.Error("directive on line 3 should suppress a floatcmp finding on line 4")
	}
	// The comma list covers both analyzers.
	dg := Diagnostic{Analyzer: "globalrand", Pos: position(fset, "ignore_fixture.go", 10)}
	if !set.suppressed(dg) {
		t.Error("comma-separated directive should suppress globalrand")
	}
	// A different analyzer is not suppressed.
	dr := Diagnostic{Analyzer: "resulterr", Pos: position(fset, "ignore_fixture.go", 4)}
	if set.suppressed(dr) {
		t.Error("directive must only cover its named analyzers")
	}
	if unused := set.unused(); len(unused) != 0 {
		t.Errorf("all directives were used; got %d unused reports", len(unused))
	}
}

func TestUnusedIgnoreReported(t *testing.T) {
	const src = `package p

//scoded:lint-ignore floatcmp this never fires
var a = 1
`
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "ignore_fixture.go", src, parser.ParseComments)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	set := &ignoreSet{}
	collectIgnores(fset, []*ast.File{f}, set)
	unused := set.unused()
	if len(unused) != 1 {
		t.Fatalf("unused directives: got %d, want 1", len(unused))
	}
	if !strings.Contains(unused[0].Message, "matches no diagnostic") {
		t.Errorf("unexpected unused message %q", unused[0].Message)
	}
}

func TestWriteJSON(t *testing.T) {
	res := &Result{
		Packages: 3,
		Diagnostics: []Diagnostic{{
			Analyzer: "floatcmp",
			Pos:      token.Position{Filename: "x.go", Line: 7, Column: 9},
			Message:  "float operands compared with ==",
		}},
	}
	var buf bytes.Buffer
	if err := WriteJSON(&buf, res); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	var decoded struct {
		Packages    int `json:"packages"`
		Diagnostics []struct {
			File     string `json:"file"`
			Line     int    `json:"line"`
			Col      int    `json:"col"`
			Analyzer string `json:"analyzer"`
		} `json:"diagnostics"`
	}
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if decoded.Packages != 3 || len(decoded.Diagnostics) != 1 {
		t.Fatalf("round-trip mismatch: %+v", decoded)
	}
	d := decoded.Diagnostics[0]
	if d.File != "x.go" || d.Line != 7 || d.Col != 9 || d.Analyzer != "floatcmp" {
		t.Fatalf("diagnostic fields wrong: %+v", d)
	}
}

func position(fset *token.FileSet, file string, line int) token.Position {
	return token.Position{Filename: file, Line: line, Column: 1}
}
