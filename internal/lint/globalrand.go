package lint

import (
	"go/ast"
	"go/types"
)

// GlobalRandAnalyzer flags uses of math/rand's global generator. SCODED's
// permutation tests (the Section 4.3 Monte-Carlo fallback) and every
// experiment harness must be reproducible run to run, so randomness flows
// through an injected *rand.Rand (detect.Options.Rng). A stray rand.Intn
// draws from the process-global source, silently breaking determinism — and
// coupling concurrent checks through the global lock. Constructors
// (rand.New, rand.NewSource, rand.NewZipf) stay allowed: they are how the
// injected generator is built.
var GlobalRandAnalyzer = &Analyzer{
	Name: "globalrand",
	Doc:  "disallow math/rand global-generator functions; inject a *rand.Rand instead",
	Run:  runGlobalRand,
}

// globalRandAllowed lists math/rand package-level functions that do not
// touch the global generator.
var globalRandAllowed = map[string]bool{
	"New":       true,
	"NewSource": true,
	"NewZipf":   true,
}

func runGlobalRand(pass *Pass) {
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fn, ok := pass.ObjectOf(sel.Sel).(*types.Func)
			if !ok || fn.Pkg() == nil {
				return true
			}
			path := fn.Pkg().Path()
			if path != "math/rand" && path != "math/rand/v2" {
				return true
			}
			if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
				// Methods on *rand.Rand / rand.Source are the injected path.
				return true
			}
			if globalRandAllowed[fn.Name()] {
				return true
			}
			pass.Reportf(sel.Pos(), "%s.%s uses the process-global generator; inject a *rand.Rand (e.g. detect.Options.Rng) for reproducibility", path, fn.Name())
			return true
		})
	}
}
