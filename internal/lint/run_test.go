package lint

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files with the current output")

// TestLoadErrorSurfacesFromUnmatchedPackage pins the driver contract that a
// type error anywhere in the module fails the run, even when the analysis
// patterns match only a healthy sibling. Before this was fixed, scoded-lint
// exited 0 on a tree that did not compile: the broken package was simply
// never analyzed, and every other package was checked against its partial
// type information.
func TestLoadErrorSurfacesFromUnmatchedPackage(t *testing.T) {
	res, err := Run(Config{Dir: filepath.Join("testdata", "loaderror"), Patterns: []string{"./good"}})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(res.TypeErrors) == 0 {
		t.Fatal("type error in unmatched package loaderror/broken was not reported")
	}
	var found bool
	for _, e := range res.TypeErrors {
		if strings.Contains(e, "loaderror/broken") {
			found = true
		}
	}
	if !found {
		t.Errorf("type errors %q do not name the broken package", res.TypeErrors)
	}
}

// TestUnusedDirectiveSweepSkipsTestdata pins that suppression examples
// living under a testdata tree are documentation, not staleness: a full run
// that explicitly targets a fixture directory must not report its directives
// as unused.
func TestUnusedDirectiveSweepSkipsTestdata(t *testing.T) {
	res, err := Run(Config{Patterns: []string{"./testdata/unuseddir"}})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(res.TypeErrors) != 0 {
		t.Fatalf("unexpected type errors: %q", res.TypeErrors)
	}
	for _, d := range res.Diagnostics {
		t.Errorf("unexpected diagnostic: %s", d.String())
	}
}

// TestJSONOutputGolden pins the -json wire format: field names, ordering,
// indentation, and the relativized file paths. Run with -update to
// regenerate after an intentional format change.
func TestJSONOutputGolden(t *testing.T) {
	res, err := Run(Config{Patterns: []string{"./testdata/errflow"}, Analyzers: []string{"errflow"}})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	var buf bytes.Buffer
	if err := WriteJSON(&buf, res); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	golden := filepath.Join("testdata", "errflow.golden.json")
	if *update {
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatalf("update golden: %v", err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (run `go test ./internal/lint -run JSONOutputGolden -update` to create it): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("JSON output drifted from %s:\n--- got ---\n%s\n--- want ---\n%s", golden, buf.Bytes(), want)
	}
}
