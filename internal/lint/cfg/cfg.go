// Package cfg builds per-function control-flow graphs over go/ast and runs
// forward dataflow analyses on them (DESIGN.md §13). The existing analyzers
// in internal/lint are purely syntactic or type-level; the concurrency and
// resource-lifecycle invariants the storage and engine layers live by — a
// Lock released on every path, a durability error consulted before it goes
// out of scope — are statements about *paths*, so they need a graph of the
// paths.
//
// The model is deliberately small:
//
//   - A Graph is one function body: basic Blocks of straight-line nodes
//     connected by successor edges, a synthetic Entry and a single synthetic
//     Exit that every return, panic, and fall-off-the-end edge reaches.
//   - Block nodes are simple statements and the expressions a control
//     statement evaluates at that point (an if condition, a range operand, a
//     switch tag). Control statements themselves never appear as nodes;
//     their bodies are blocks. Function literals are separate functions and
//     are never inlined.
//   - Deferred statements are recorded on the Graph in source order. Go runs
//     them at every exit (including panics), so exit-state checks consult
//     them separately rather than threading them through the flow.
//
// Forward (dataflow.go) is the companion engine: a worklist fixpoint over a
// caller-supplied join-semilattice of facts, returning the fact at every
// block entry so analyzers can replay transfers for precise reporting.
package cfg

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Block is one basic block: nodes that execute in sequence with no internal
// control transfer, then a jump to one of Succs.
type Block struct {
	// Index is the block's position in Graph.Blocks (creation order).
	Index int
	// Kind names the construct that created the block ("entry", "if.then",
	// "for.head", "select.case", ...) for tests and debugging.
	Kind string
	// Nodes are the simple statements and control-point expressions executed
	// in this block, in order. Walk them with Inspect, not ast.Inspect: a
	// node may syntactically contain bodies that belong to other blocks.
	Nodes []ast.Node
	// Succs are the possible control-flow successors.
	Succs []*Block
	// Preds are the predecessors (the inverse of Succs).
	Preds []*Block
}

// Graph is the control-flow graph of one function body.
type Graph struct {
	// Entry is the block control enters first.
	Entry *Block
	// Exit is the single synthetic exit reached by every return, panic, and
	// fall-off-the-end path. It has no nodes.
	Exit *Block
	// Blocks lists every block, Entry first, in creation order. Unreachable
	// blocks (code after return, bodies of select{} cases that cannot run)
	// are present but have no predecessors.
	Blocks []*Block
	// Defers are the function's defer statements in source order. They run
	// at Exit on every path that executed them; exit-state checks treat
	// them conservatively as all running.
	Defers []*ast.DeferStmt

	comm map[ast.Stmt]bool
}

// IsComm reports whether stmt is the communication clause of a select case
// (`case v := <-ch:`). The enclosing SelectStmt node already represents the
// blocking point, so analyzers that flag channel operations can skip comm
// stmts to avoid double-reporting one select.
func (g *Graph) IsComm(n ast.Node) bool {
	s, ok := n.(ast.Stmt)
	return ok && g.comm[s]
}

// New builds the CFG of one function body. info may be nil; when present it
// sharpens terminator detection (a locally shadowed `panic` is not treated
// as the builtin).
func New(body *ast.BlockStmt, info *types.Info) *Graph {
	g := &Graph{comm: make(map[ast.Stmt]bool)}
	b := &builder{g: g, info: info, labels: make(map[string]*Block)}
	g.Entry = b.block("entry")
	g.Exit = &Block{Kind: "exit"}
	b.cur = g.Entry
	if body != nil {
		b.stmtList(body.List)
	}
	b.edge(b.cur, g.Exit)
	for _, pg := range b.gotos {
		if target, ok := b.labels[pg.name]; ok {
			b.edge(pg.from, target)
		}
	}
	g.Exit.Index = len(g.Blocks)
	g.Blocks = append(g.Blocks, g.Exit)
	return g
}

// scope is one enclosing breakable/continuable construct.
type scope struct {
	label      string
	breakTo    *Block
	continueTo *Block // nil for switch and select
}

type pendingGoto struct {
	from *Block
	name string
}

type builder struct {
	g      *Graph
	info   *types.Info
	cur    *Block
	scopes []scope
	labels map[string]*Block
	gotos  []pendingGoto
	// pendingLabel names the label immediately preceding a loop/switch/
	// select, so `break L` and `continue L` resolve to it.
	pendingLabel string
	// fallTarget is the next case block of the innermost switch, the target
	// of a fallthrough statement.
	fallTarget *Block
}

func (b *builder) block(kind string) *Block {
	blk := &Block{Index: len(b.g.Blocks), Kind: kind}
	b.g.Blocks = append(b.g.Blocks, blk)
	return blk
}

func (b *builder) edge(from, to *Block) {
	for _, s := range from.Succs {
		if s == to {
			return
		}
	}
	from.Succs = append(from.Succs, to)
	to.Preds = append(to.Preds, from)
}

func (b *builder) add(n ast.Node) {
	if n != nil {
		b.cur.Nodes = append(b.cur.Nodes, n)
	}
}

// jump terminates the current block with an edge to target and continues
// building into a fresh, unreachable block (any trailing dead code still
// parses into nodes, it just has no predecessors).
func (b *builder) jump(target *Block) {
	if target != nil {
		b.edge(b.cur, target)
	}
	b.cur = b.block("unreachable")
}

func (b *builder) stmtList(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s)
	}
}

// takeLabel consumes the label attached to the statement being built.
func (b *builder) takeLabel() string {
	l := b.pendingLabel
	b.pendingLabel = ""
	return l
}

func (b *builder) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		b.takeLabel()
		b.stmtList(s.List)

	case *ast.IfStmt:
		b.takeLabel()
		b.add(s.Init)
		b.add(s.Cond)
		then := b.block("if.then")
		after := b.block("if.after")
		b.edge(b.cur, then)
		var alt *Block
		if s.Else != nil {
			alt = b.block("if.else")
			b.edge(b.cur, alt)
		} else {
			b.edge(b.cur, after)
		}
		b.cur = then
		b.stmtList(s.Body.List)
		b.edge(b.cur, after)
		if s.Else != nil {
			b.cur = alt
			b.stmt(s.Else)
			b.edge(b.cur, after)
		}
		b.cur = after

	case *ast.ForStmt:
		label := b.takeLabel()
		b.add(s.Init)
		head := b.block("for.head")
		b.edge(b.cur, head)
		if s.Cond != nil {
			head.Nodes = append(head.Nodes, s.Cond)
		}
		body := b.block("for.body")
		after := b.block("for.after")
		b.edge(head, body)
		if s.Cond != nil {
			b.edge(head, after)
		}
		cont := head
		if s.Post != nil {
			cont = b.block("for.post")
			cont.Nodes = append(cont.Nodes, s.Post)
			b.edge(cont, head)
		}
		b.scopes = append(b.scopes, scope{label: label, breakTo: after, continueTo: cont})
		b.cur = body
		b.stmtList(s.Body.List)
		b.edge(b.cur, cont)
		b.scopes = b.scopes[:len(b.scopes)-1]
		b.cur = after

	case *ast.RangeStmt:
		label := b.takeLabel()
		head := b.block("range.head")
		b.edge(b.cur, head)
		head.Nodes = append(head.Nodes, s)
		body := b.block("range.body")
		after := b.block("range.after")
		b.edge(head, body)
		b.edge(head, after)
		b.scopes = append(b.scopes, scope{label: label, breakTo: after, continueTo: head})
		b.cur = body
		b.stmtList(s.Body.List)
		b.edge(b.cur, head)
		b.scopes = b.scopes[:len(b.scopes)-1]
		b.cur = after

	case *ast.SwitchStmt:
		b.buildSwitch(s.Init, s.Tag, nil, s.Body, true)

	case *ast.TypeSwitchStmt:
		b.buildSwitch(s.Init, nil, s.Assign, s.Body, false)

	case *ast.SelectStmt:
		label := b.takeLabel()
		b.add(s)
		after := b.block("select.after")
		head := b.cur
		b.scopes = append(b.scopes, scope{label: label, breakTo: after})
		for _, cl := range s.Body.List {
			cc := cl.(*ast.CommClause)
			kind := "select.case"
			if cc.Comm == nil {
				kind = "select.default"
			}
			cb := b.block(kind)
			b.edge(head, cb)
			if cc.Comm != nil {
				cb.Nodes = append(cb.Nodes, cc.Comm)
				b.g.comm[cc.Comm] = true
			}
			b.cur = cb
			b.stmtList(cc.Body)
			b.edge(b.cur, after)
		}
		b.scopes = b.scopes[:len(b.scopes)-1]
		// select{} with no cases blocks forever: after keeps no predecessors.
		b.cur = after

	case *ast.LabeledStmt:
		b.takeLabel()
		lb := b.block("label." + s.Label.Name)
		b.edge(b.cur, lb)
		b.cur = lb
		b.labels[s.Label.Name] = lb
		b.pendingLabel = s.Label.Name
		b.stmt(s.Stmt)
		b.pendingLabel = ""

	case *ast.BranchStmt:
		b.takeLabel()
		switch s.Tok {
		case token.BREAK:
			b.jump(b.findScope(s, false))
		case token.CONTINUE:
			b.jump(b.findScope(s, true))
		case token.GOTO:
			from := b.cur
			b.cur = b.block("unreachable")
			b.gotos = append(b.gotos, pendingGoto{from: from, name: s.Label.Name})
		case token.FALLTHROUGH:
			b.jump(b.fallTarget)
		}

	case *ast.ReturnStmt:
		b.takeLabel()
		b.add(s)
		b.jump(b.g.Exit)

	case *ast.DeferStmt:
		b.takeLabel()
		b.g.Defers = append(b.g.Defers, s)
		b.add(s)

	case *ast.ExprStmt:
		b.takeLabel()
		b.add(s)
		if call, ok := s.X.(*ast.CallExpr); ok && b.terminates(call) {
			b.jump(b.g.Exit)
		}

	case *ast.EmptyStmt:
		b.takeLabel()

	default:
		// Assignments, declarations, sends, go statements, inc/dec.
		b.takeLabel()
		b.add(s)
	}
}

// buildSwitch handles expression and type switches. assign is the
// `x := y.(type)` statement of a type switch; allowFall enables
// fallthrough edges (expression switches only).
func (b *builder) buildSwitch(init ast.Stmt, tag ast.Expr, assign ast.Stmt, body *ast.BlockStmt, allowFall bool) {
	label := b.takeLabel()
	b.add(init)
	if tag != nil {
		b.add(tag)
	}
	b.add(assign)
	head := b.cur
	after := b.block("switch.after")

	var cases []*ast.CaseClause
	for _, cl := range body.List {
		cases = append(cases, cl.(*ast.CaseClause))
	}
	blocks := make([]*Block, len(cases))
	hasDefault := false
	for i, cc := range cases {
		kind := "switch.case"
		if cc.List == nil {
			kind = "switch.default"
			hasDefault = true
		}
		blocks[i] = b.block(kind)
		b.edge(head, blocks[i])
	}
	if !hasDefault {
		b.edge(head, after)
	}

	b.scopes = append(b.scopes, scope{label: label, breakTo: after})
	savedFall := b.fallTarget
	for i, cc := range cases {
		b.cur = blocks[i]
		for _, e := range cc.List {
			b.add(e)
		}
		b.fallTarget = nil
		if allowFall && i+1 < len(blocks) {
			b.fallTarget = blocks[i+1]
		}
		b.stmtList(cc.Body)
		b.edge(b.cur, after)
	}
	b.fallTarget = savedFall
	b.scopes = b.scopes[:len(b.scopes)-1]
	b.cur = after
}

// findScope resolves a break/continue target, honoring labels.
func (b *builder) findScope(s *ast.BranchStmt, needContinue bool) *Block {
	for i := len(b.scopes) - 1; i >= 0; i-- {
		sc := b.scopes[i]
		if s.Label != nil && sc.label != s.Label.Name {
			continue
		}
		if needContinue {
			if sc.continueTo != nil {
				return sc.continueTo
			}
			continue
		}
		return sc.breakTo
	}
	return nil
}

// terminates reports whether a call never returns: the panic builtin,
// os.Exit, runtime.Goexit, or the log.Fatal family.
func (b *builder) terminates(call *ast.CallExpr) bool {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		if fun.Name != "panic" {
			return false
		}
		if b.info == nil {
			return true
		}
		_, isBuiltin := b.info.ObjectOf(fun).(*types.Builtin)
		return isBuiltin
	case *ast.SelectorExpr:
		if b.info == nil {
			pkg, ok := fun.X.(*ast.Ident)
			if !ok {
				return false
			}
			return terminatorFunc(pkg.Name, fun.Sel.Name)
		}
		fn, ok := b.info.ObjectOf(fun.Sel).(*types.Func)
		if !ok || fn.Pkg() == nil {
			return false
		}
		return terminatorFunc(fn.Pkg().Path(), fn.Name())
	}
	return false
}

func terminatorFunc(pkg, name string) bool {
	switch pkg {
	case "os":
		return name == "Exit"
	case "runtime":
		return name == "Goexit"
	case "log":
		return name == "Fatal" || name == "Fatalf" || name == "Fatalln" ||
			name == "Panic" || name == "Panicf" || name == "Panicln"
	}
	return false
}

// Inspect walks the parts of a CFG node that execute at that node, calling
// f in ast.Inspect style. It differs from ast.Inspect in exactly two ways:
// the bodies a control node owns (a RangeStmt's Body, a SelectStmt's cases)
// are skipped because they live in other blocks, and function literals are
// visited but not descended into — their bodies are separate functions with
// their own graphs.
func Inspect(n ast.Node, f func(ast.Node) bool) {
	switch n := n.(type) {
	case nil:
		return
	case *ast.RangeStmt:
		if !f(n) {
			return
		}
		Inspect(n.Key, f)
		Inspect(n.Value, f)
		Inspect(n.X, f)
	case *ast.SelectStmt:
		f(n)
	default:
		ast.Inspect(n, func(m ast.Node) bool {
			if fl, ok := m.(*ast.FuncLit); ok {
				return f(fl) && false // visit the literal, skip its body
			}
			return f(m)
		})
	}
}
