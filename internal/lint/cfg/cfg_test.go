package cfg

import (
	"go/ast"
	"go/parser"
	"go/token"
	"testing"
)

// buildFunc parses src as the body of one function and returns its graph.
// src is the function's statements, without braces.
func buildFunc(t *testing.T, body string) *Graph {
	t.Helper()
	src := "package p\nfunc f() {\n" + body + "\n}\n"
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "f.go", src, 0)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	fd := file.Decls[0].(*ast.FuncDecl)
	return New(fd.Body, nil)
}

// byKind returns every block with the given kind.
func byKind(g *Graph, kind string) []*Block {
	var out []*Block
	for _, b := range g.Blocks {
		if b.Kind == kind {
			out = append(out, b)
		}
	}
	return out
}

func one(t *testing.T, g *Graph, kind string) *Block {
	t.Helper()
	bs := byKind(g, kind)
	if len(bs) != 1 {
		t.Fatalf("blocks of kind %q: got %d, want 1", kind, len(bs))
	}
	return bs[0]
}

func hasEdge(from, to *Block) bool {
	for _, s := range from.Succs {
		if s == to {
			return true
		}
	}
	return false
}

// reaches reports whether to is reachable from from along Succs.
func reaches(from, to *Block) bool {
	seen := map[*Block]bool{}
	var dfs func(b *Block) bool
	dfs = func(b *Block) bool {
		if b == to {
			return true
		}
		if seen[b] {
			return false
		}
		seen[b] = true
		for _, s := range b.Succs {
			if dfs(s) {
				return true
			}
		}
		return false
	}
	return dfs(from)
}

func TestLinearBody(t *testing.T) {
	g := buildFunc(t, "x := 1\ny := x + 1\n_ = y")
	if len(g.Entry.Nodes) != 3 {
		t.Errorf("entry nodes: got %d, want 3", len(g.Entry.Nodes))
	}
	if !hasEdge(g.Entry, g.Exit) {
		t.Error("straight-line body should fall through entry -> exit")
	}
	if len(g.Exit.Succs) != 0 || len(g.Exit.Nodes) != 0 {
		t.Error("exit must be empty and terminal")
	}
}

func TestIfElseJoin(t *testing.T) {
	g := buildFunc(t, `
x := 1
if x > 0 {
	x = 2
} else {
	x = 3
}
_ = x`)
	then := one(t, g, "if.then")
	alt := one(t, g, "if.else")
	after := one(t, g, "if.after")
	if !hasEdge(g.Entry, then) || !hasEdge(g.Entry, alt) {
		t.Error("condition block must branch to both arms")
	}
	if !hasEdge(then, after) || !hasEdge(alt, after) {
		t.Error("both arms must rejoin at if.after")
	}
	if hasEdge(g.Entry, after) {
		t.Error("with an else, the condition must not jump straight to the join")
	}
}

func TestIfWithoutElse(t *testing.T) {
	g := buildFunc(t, "x := 1\nif x > 0 {\n\tx = 2\n}\n_ = x")
	after := one(t, g, "if.after")
	if !hasEdge(g.Entry, after) {
		t.Error("without an else, the false path skips to if.after")
	}
}

func TestForLoopShape(t *testing.T) {
	g := buildFunc(t, `
s := 0
for i := 0; i < 10; i++ {
	s += i
}
_ = s`)
	head := one(t, g, "for.head")
	body := one(t, g, "for.body")
	post := one(t, g, "for.post")
	after := one(t, g, "for.after")
	if !hasEdge(head, body) || !hasEdge(head, after) {
		t.Error("conditional head must branch to body and after")
	}
	if !hasEdge(body, post) || !hasEdge(post, head) {
		t.Error("body -> post -> head is the loop's back edge")
	}
}

func TestForBreakContinue(t *testing.T) {
	g := buildFunc(t, `
for i := 0; i < 10; i++ {
	if i == 3 {
		continue
	}
	if i == 7 {
		break
	}
}`)
	head := one(t, g, "for.head")
	post := one(t, g, "for.post")
	after := one(t, g, "for.after")
	thens := byKind(g, "if.then")
	if len(thens) != 2 {
		t.Fatalf("if.then blocks: got %d, want 2", len(thens))
	}
	if !hasEdge(thens[0], post) {
		t.Error("continue must jump to for.post")
	}
	if !hasEdge(thens[1], after) {
		t.Error("break must jump to for.after")
	}
	if !reaches(g.Entry, head) || !reaches(g.Entry, g.Exit) {
		t.Error("loop must stay connected entry -> head and entry -> exit")
	}
}

func TestLabeledBreakContinue(t *testing.T) {
	g := buildFunc(t, `
outer:
for i := 0; i < 3; i++ {
	for j := 0; j < 3; j++ {
		if j == 1 {
			continue outer
		}
		if j == 2 {
			break outer
		}
	}
}`)
	thens := byKind(g, "if.then")
	if len(thens) != 2 {
		t.Fatalf("if.then blocks: got %d, want 2", len(thens))
	}
	afters := byKind(g, "for.after")
	posts := byKind(g, "for.post")
	// Outer loop's post and after are created before the inner loop's.
	if !hasEdge(thens[0], posts[0]) {
		t.Error("continue outer must target the outer loop's post")
	}
	if !hasEdge(thens[1], afters[0]) {
		t.Error("break outer must target the outer loop's after")
	}
}

func TestRangeLoop(t *testing.T) {
	g := buildFunc(t, `
xs := []int{1, 2, 3}
s := 0
for _, x := range xs {
	s += x
}
_ = s`)
	head := one(t, g, "range.head")
	body := one(t, g, "range.body")
	after := one(t, g, "range.after")
	if !hasEdge(head, body) || !hasEdge(head, after) || !hasEdge(body, head) {
		t.Error("range must loop head <-> body and exit head -> after")
	}
	if len(head.Nodes) != 1 {
		t.Fatalf("range head nodes: got %d, want 1 (the RangeStmt)", len(head.Nodes))
	}
	if _, ok := head.Nodes[0].(*ast.RangeStmt); !ok {
		t.Errorf("range head node is %T, want *ast.RangeStmt", head.Nodes[0])
	}
}

func TestSwitchFallthrough(t *testing.T) {
	g := buildFunc(t, `
x := 1
switch x {
case 1:
	x = 10
	fallthrough
case 2:
	x = 20
default:
	x = 30
}
_ = x`)
	cases := byKind(g, "switch.case")
	if len(cases) != 2 {
		t.Fatalf("switch.case blocks: got %d, want 2", len(cases))
	}
	def := one(t, g, "switch.default")
	after := one(t, g, "switch.after")
	if !hasEdge(cases[0], cases[1]) {
		t.Error("fallthrough must edge case 1 into case 2")
	}
	if !hasEdge(cases[1], after) || !hasEdge(def, after) {
		t.Error("cases must rejoin at switch.after")
	}
	if hasEdge(g.Entry, after) {
		t.Error("a switch with a default cannot skip every case")
	}
}

func TestSwitchWithoutDefault(t *testing.T) {
	g := buildFunc(t, "x := 1\nswitch x {\ncase 1:\n\tx = 10\n}\n_ = x")
	after := one(t, g, "switch.after")
	if !hasEdge(g.Entry, after) {
		t.Error("without a default, the head must edge to switch.after")
	}
}

func TestSelectShape(t *testing.T) {
	g := buildFunc(t, `
ch := make(chan int)
done := make(chan struct{})
select {
case v := <-ch:
	_ = v
case <-done:
default:
}`)
	cases := byKind(g, "select.case")
	if len(cases) != 2 {
		t.Fatalf("select.case blocks: got %d, want 2", len(cases))
	}
	one(t, g, "select.default")
	for _, cb := range cases {
		if len(cb.Nodes) == 0 {
			t.Fatal("select case must carry its comm statement")
		}
		if !g.IsComm(cb.Nodes[0]) {
			t.Errorf("comm statement %T not marked IsComm", cb.Nodes[0])
		}
	}
	// The SelectStmt itself is a node of the head block.
	found := false
	for _, n := range g.Entry.Nodes {
		if _, ok := n.(*ast.SelectStmt); ok {
			found = true
		}
	}
	if !found {
		t.Error("head block must carry the SelectStmt node")
	}
}

func TestReturnAndDeadCode(t *testing.T) {
	g := buildFunc(t, "x := 1\nif x > 0 {\n\treturn\n}\n_ = x\nreturn")
	then := one(t, g, "if.then")
	if !hasEdge(then, g.Exit) {
		t.Error("return must edge to exit")
	}
	for _, b := range byKind(g, "unreachable") {
		if len(b.Preds) != 0 {
			t.Errorf("unreachable block %d has %d preds", b.Index, len(b.Preds))
		}
	}
}

func TestPanicTerminates(t *testing.T) {
	g := buildFunc(t, "x := 1\nif x > 0 {\n\tpanic(\"boom\")\n}\n_ = x")
	then := one(t, g, "if.then")
	if !hasEdge(then, g.Exit) {
		t.Error("panic must edge to exit")
	}
	if len(then.Succs) != 1 {
		t.Errorf("panic block succs: got %d, want 1 (exit only)", len(then.Succs))
	}
}

func TestGotoEdges(t *testing.T) {
	g := buildFunc(t, `
i := 0
loop:
i++
if i < 10 {
	goto loop
}
_ = i`)
	label := one(t, g, "label.loop")
	then := one(t, g, "if.then")
	if !hasEdge(then, label) {
		t.Error("goto must edge back to its label block")
	}
	if !reaches(g.Entry, g.Exit) {
		t.Error("fallthrough path must still reach exit")
	}
}

func TestDefersCollected(t *testing.T) {
	g := buildFunc(t, `
defer println("a")
x := 1
if x > 0 {
	defer println("b")
}
for i := 0; i < 2; i++ {
	defer println("c")
}`)
	if len(g.Defers) != 3 {
		t.Fatalf("defers: got %d, want 3", len(g.Defers))
	}
	// Source order: a, b, c.
	for i, want := range []string{`"a"`, `"b"`, `"c"`} {
		lit := g.Defers[i].Call.Args[0].(*ast.BasicLit)
		if lit.Value != want {
			t.Errorf("defer %d arg: got %s, want %s", i, lit.Value, want)
		}
	}
}

func TestInspectSkipsFuncLitBodies(t *testing.T) {
	g := buildFunc(t, "f := func() { panic(\"inner\") }\n_ = f")
	sawFuncLit, sawPanic := false, false
	for _, n := range g.Entry.Nodes {
		Inspect(n, func(m ast.Node) bool {
			switch m := m.(type) {
			case *ast.FuncLit:
				sawFuncLit = true
			case *ast.Ident:
				if m.Name == "panic" {
					sawPanic = true
				}
			}
			return true
		})
	}
	if !sawFuncLit {
		t.Error("Inspect must visit the FuncLit node itself")
	}
	if sawPanic {
		t.Error("Inspect must not descend into FuncLit bodies")
	}
}
