package cfg

// The forward dataflow engine: a worklist fixpoint over a caller-supplied
// join-semilattice. Analyzers describe their facts with a Lattice and get
// back the fact at every block entry; ReplayBlocks then re-applies the
// transfer function node by node so reports can cite the exact program
// point where an invariant broke.

import "go/ast"

// Lattice describes one forward analysis over facts of type F.
//
// Transfer must be pure: it returns the fact after n without mutating its
// input (facts are shared between blocks by the engine). Join computes the
// least upper bound of two facts (set union for a may-analysis); it too
// must not mutate its inputs. Equal detects the fixpoint. Bottom is the
// "nothing known" fact seeded into every block except the entry.
type Lattice[F any] struct {
	Bottom   func() F
	Transfer func(fact F, n ast.Node) F
	Join     func(a, b F) F
	Equal    func(a, b F) bool
}

// Forward runs the analysis to fixpoint and returns the fact holding at the
// entry of every block. entry is the fact at Graph.Entry. The worklist
// visits blocks in reverse post-order; a safety cap bounds the iteration
// count so a lattice of unbounded height degrades to a partial (still
// sound-for-reporting) result instead of spinning.
func Forward[F any](g *Graph, entry F, lat Lattice[F]) map[*Block]F {
	in := make(map[*Block]F, len(g.Blocks))
	for _, b := range g.Blocks {
		in[b] = lat.Bottom()
	}
	in[g.Entry] = entry

	order := g.ReversePostOrder()
	pos := make(map[*Block]int, len(order))
	for i, b := range order {
		pos[b] = i
	}
	queued := make([]bool, len(g.Blocks))
	var work []*Block
	push := func(b *Block) {
		if !queued[b.Index] {
			queued[b.Index] = true
			work = append(work, b)
		}
	}
	for _, b := range order {
		push(b)
	}

	budget := 64*len(g.Blocks) + 256
	for len(work) > 0 && budget > 0 {
		budget--
		// Pop the earliest block in RPO for near-optimal convergence.
		best := 0
		for i := 1; i < len(work); i++ {
			if pos[work[i]] < pos[work[best]] {
				best = i
			}
		}
		b := work[best]
		work[best] = work[len(work)-1]
		work = work[:len(work)-1]
		queued[b.Index] = false

		out := in[b]
		for _, n := range b.Nodes {
			out = lat.Transfer(out, n)
		}
		for _, s := range b.Succs {
			merged := lat.Join(in[s], out)
			if !lat.Equal(merged, in[s]) {
				in[s] = merged
				push(s)
			}
		}
	}
	return in
}

// ReplayBlocks walks every block once, re-applying Transfer from the
// block's entry fact and calling visit with the fact in force immediately
// before each node. Each node is visited exactly once, making this the
// reporting pass: the fixpoint facts come from Forward, the diagnostics
// from the replay.
func ReplayBlocks[F any](g *Graph, in map[*Block]F, lat Lattice[F], visit func(b *Block, n ast.Node, before F)) {
	for _, b := range g.Blocks {
		fact := in[b]
		for _, n := range b.Nodes {
			visit(b, n, fact)
			fact = lat.Transfer(fact, n)
		}
	}
}

// ReversePostOrder returns the blocks reachable from Entry in reverse
// post-order (predecessors generally before successors), followed by any
// unreachable blocks in creation order.
func (g *Graph) ReversePostOrder() []*Block {
	seen := make([]bool, len(g.Blocks))
	var post []*Block
	var dfs func(b *Block)
	dfs = func(b *Block) {
		seen[b.Index] = true
		for _, s := range b.Succs {
			if !seen[s.Index] {
				dfs(s)
			}
		}
		post = append(post, b)
	}
	dfs(g.Entry)
	out := make([]*Block, 0, len(g.Blocks))
	for i := len(post) - 1; i >= 0; i-- {
		out = append(out, post[i])
	}
	for _, b := range g.Blocks {
		if !seen[b.Index] {
			out = append(out, b)
		}
	}
	return out
}
