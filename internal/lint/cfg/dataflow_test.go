package cfg

import (
	"go/ast"
	"sort"
	"strings"
	"testing"
)

// The test lattice tracks the set of variable names assigned so far — a tiny
// may-analysis with the same shape (map fact, union join) the real analyzers
// use, exercising joins at merges and fixpoints over back edges.

type nameSet map[string]bool

func assignedLattice() Lattice[nameSet] {
	return Lattice[nameSet]{
		Bottom: func() nameSet { return nameSet{} },
		Transfer: func(f nameSet, n ast.Node) nameSet {
			asg, ok := n.(*ast.AssignStmt)
			if !ok {
				return f
			}
			out := nameSet{}
			for k := range f {
				out[k] = true
			}
			for _, lhs := range asg.Lhs {
				if id, ok := lhs.(*ast.Ident); ok && id.Name != "_" {
					out[id.Name] = true
				}
			}
			return out
		},
		Join: func(a, b nameSet) nameSet {
			out := nameSet{}
			for k := range a {
				out[k] = true
			}
			for k := range b {
				out[k] = true
			}
			return out
		},
		Equal: func(a, b nameSet) bool {
			if len(a) != len(b) {
				return false
			}
			for k := range a {
				if !b[k] {
					return false
				}
			}
			return true
		},
	}
}

func names(s nameSet) string {
	var out []string
	for k := range s {
		out = append(out, k)
	}
	sort.Strings(out)
	return strings.Join(out, ",")
}

func TestForwardBranchJoin(t *testing.T) {
	g := buildFunc(t, `
a := 1
if a > 0 {
	b := 2
	_ = b
} else {
	c := 3
	_ = c
}
d := 4
_ = d`)
	in := Forward(g, nameSet{}, assignedLattice())
	after := one(t, g, "if.after")
	// Union join: both arms' names flow into the merge point.
	if got := names(in[after]); got != "a,b,c" {
		t.Errorf("fact at if.after: got %q, want %q", got, "a,b,c")
	}
	if got := names(in[g.Exit]); got != "a,b,c,d" {
		t.Errorf("fact at exit: got %q, want %q", got, "a,b,c,d")
	}
}

func TestForwardLoopFixpoint(t *testing.T) {
	g := buildFunc(t, `
a := 1
for a < 10 {
	b := a
	a = b + 1
}
_ = a`)
	in := Forward(g, nameSet{}, assignedLattice())
	head := one(t, g, "for.head")
	// The back edge feeds b into the head on the second visit; the
	// fixpoint must include it.
	if got := names(in[head]); got != "a,b" {
		t.Errorf("fact at loop head: got %q, want %q", got, "a,b")
	}
}

func TestForwardUnreachableStaysBottom(t *testing.T) {
	g := buildFunc(t, "return\na := 1\n_ = a")
	in := Forward(g, nameSet{}, assignedLattice())
	for _, b := range byKind(g, "unreachable") {
		if len(in[b]) != 0 {
			t.Errorf("unreachable block %d has non-bottom fact %q", b.Index, names(in[b]))
		}
	}
}

func TestReplayVisitsEachNodeOnce(t *testing.T) {
	g := buildFunc(t, `
a := 1
for a < 3 {
	a = a + 1
}
_ = a`)
	lat := assignedLattice()
	in := Forward(g, nameSet{}, lat)
	counts := map[ast.Node]int{}
	ReplayBlocks(g, in, lat, func(_ *Block, n ast.Node, _ nameSet) {
		counts[n]++
	})
	total := 0
	for _, b := range g.Blocks {
		total += len(b.Nodes)
	}
	if len(counts) != total {
		t.Errorf("replay visited %d distinct nodes, want %d", len(counts), total)
	}
	for n, c := range counts {
		if c != 1 {
			t.Errorf("node %T visited %d times, want 1", n, c)
		}
	}
}
