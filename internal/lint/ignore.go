package lint

import (
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// ignorePrefix introduces a suppression directive. The full form is
//
//	//scoded:lint-ignore <analyzer>[,<analyzer>...] <reason>
//
// placed either on the offending line (trailing comment) or on the line
// immediately above it. The reason is mandatory: an exact float comparison
// or a deliberately-ignored error is only acceptable with a recorded
// justification.
const ignorePrefix = "//scoded:lint-ignore"

// ignoreDirective is one parsed suppression comment.
type ignoreDirective struct {
	pos       token.Position
	analyzers map[string]bool
	reason    string
	used      bool
}

// matches reports whether the directive suppresses the named analyzer.
func (d *ignoreDirective) matches(analyzer string) bool {
	return d.analyzers[analyzer]
}

// ignoreSet indexes directives by file and line for O(1) lookup while
// filtering diagnostics.
type ignoreSet struct {
	byLine map[string]map[int]*ignoreDirective
	all    []*ignoreDirective
	// malformed collects directives without a reason; they suppress
	// nothing and are reported as findings themselves.
	malformed []Diagnostic
}

// collectIgnores scans a package's comments for suppression directives.
func collectIgnores(fset *token.FileSet, files []*ast.File, set *ignoreSet) {
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(c.Text)
				if !strings.HasPrefix(text, ignorePrefix) {
					continue
				}
				pos := fset.Position(c.Pos())
				rest := strings.TrimPrefix(text, ignorePrefix)
				if rest != "" && !strings.HasPrefix(rest, " ") && !strings.HasPrefix(rest, "\t") {
					// Something like //scoded:lint-ignoreXYZ — not ours.
					continue
				}
				fields := strings.Fields(rest)
				if len(fields) < 2 {
					set.malformed = append(set.malformed, Diagnostic{
						Analyzer: "lint-ignore",
						Pos:      pos,
						Message:  "suppression needs an analyzer name and a reason: //scoded:lint-ignore <analyzer> <reason>",
					})
					continue
				}
				d := &ignoreDirective{pos: pos, analyzers: make(map[string]bool), reason: strings.Join(fields[1:], " ")}
				for _, name := range strings.Split(fields[0], ",") {
					if name != "" {
						d.analyzers[name] = true
					}
				}
				if set.byLine[pos.Filename] == nil {
					if set.byLine == nil {
						set.byLine = make(map[string]map[int]*ignoreDirective)
					}
					set.byLine[pos.Filename] = make(map[int]*ignoreDirective)
				}
				set.byLine[pos.Filename][pos.Line] = d
				set.all = append(set.all, d)
			}
		}
	}
}

// suppressed reports whether a diagnostic is covered by a directive on its
// own line or the line above, marking the directive used.
func (s *ignoreSet) suppressed(d Diagnostic) bool {
	lines, ok := s.byLine[d.Pos.Filename]
	if !ok {
		return false
	}
	for _, line := range []int{d.Pos.Line, d.Pos.Line - 1} {
		if dir, ok := lines[line]; ok && dir.matches(d.Analyzer) {
			dir.used = true
			return true
		}
	}
	return false
}

// unused reports directives that never suppressed anything — stale
// justifications are misleading, so they are findings too.
func (s *ignoreSet) unused() []Diagnostic {
	var out []Diagnostic
	for _, d := range s.all {
		if d.used {
			continue
		}
		names := make([]string, 0, len(d.analyzers))
		for n := range d.analyzers {
			names = append(names, n)
		}
		sort.Strings(names)
		out = append(out, Diagnostic{
			Analyzer: "lint-ignore",
			Pos:      d.pos,
			Message:  "suppression for " + strings.Join(names, ",") + " matches no diagnostic; remove it",
		})
	}
	return out
}
