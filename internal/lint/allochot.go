package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// AllocHotAnalyzer guards the detection hot path's allocation discipline.
// The cold-profile work that removed per-row key strings and map-based code
// remaps (DESIGN.md §15) only stays removed if nobody reintroduces them, so
// files that opt in with a
//
//	//scoded:hotpath
//
// comment are held to a stricter standard: no fmt.Sprint* key construction,
// no runtime string concatenation, and no map allocation. Each of those is a
// per-call heap allocation (and for maps, hashing on every access) that the
// flat []int32 encodings exist to avoid. Intentional exceptions — a
// per-artifact cache key built once per memoized entry, not once per row —
// carry a //scoded:lint-ignore allochot justification, which keeps the
// audit trail next to the allocation.
var AllocHotAnalyzer = &Analyzer{
	Name: "allochot",
	Doc:  "disallow fmt.Sprint*, string concatenation, and map allocation in //scoded:hotpath files",
	Run:  runAllocHot,
}

// hotpathMarker opts a file into the allochot discipline.
const hotpathMarker = "//scoded:hotpath"

// isHotpathFile reports whether any comment in the file is the marker.
func isHotpathFile(f *ast.File) bool {
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			if strings.TrimSpace(c.Text) == hotpathMarker {
				return true
			}
		}
	}
	return false
}

// sprintFuncs are the fmt formatters that build a fresh string (or []byte)
// per call. Errorf stays allowed: error paths are cold by construction.
var sprintFuncs = map[string]bool{
	"Sprintf":  true,
	"Sprint":   true,
	"Sprintln": true,
	"Appendf":  true,
}

func runAllocHot(pass *Pass) {
	for _, f := range pass.Pkg.Files {
		if !isHotpathFile(f) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch e := n.(type) {
			case *ast.BinaryExpr:
				if e.Op != token.ADD {
					return true
				}
				tv, ok := pass.Pkg.Info.Types[e]
				if !ok || !isStringType(tv.Type) {
					return true
				}
				if tv.Value != nil {
					// Constant-folded concatenation ("a"+"b") never reaches
					// the runtime.
					return true
				}
				pass.Reportf(e.OpPos, "string concatenation allocates in a hotpath file; build flat codes or hoist the key off the per-row path")
				// One report per concat chain, not one per +.
				return false
			case *ast.CallExpr:
				if sel, ok := e.Fun.(*ast.SelectorExpr); ok {
					if fn, ok := pass.ObjectOf(sel.Sel).(*types.Func); ok &&
						fn.Pkg() != nil && fn.Pkg().Path() == "fmt" && sprintFuncs[fn.Name()] {
						pass.Reportf(e.Pos(), "fmt.%s allocates a string per call in a hotpath file; hot keys must be precomputed or encoded flat", fn.Name())
						return true
					}
				}
				if id, ok := e.Fun.(*ast.Ident); ok && id.Name == "make" && len(e.Args) >= 1 {
					if obj := pass.ObjectOf(id); obj != nil {
						if _, isBuiltin := obj.(*types.Builtin); isBuiltin && isMapType(pass.TypeOf(e.Args[0])) {
							pass.Reportf(e.Pos(), "map allocation in a hotpath file; use a flat slice remap (codes are dense) or justify with a lint-ignore")
						}
					}
				}
			case *ast.CompositeLit:
				if isMapType(pass.TypeOf(e)) {
					pass.Reportf(e.Pos(), "map literal allocates in a hotpath file; use a flat slice remap (codes are dense) or justify with a lint-ignore")
					return false
				}
			}
			return true
		})
	}
}

// isStringType reports whether t's underlying type is string.
func isStringType(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

// isMapType reports whether t's underlying type is a map.
func isMapType(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Map)
	return ok
}
