package lint

import (
	"go/ast"
	"go/types"
)

// CtxFirstAnalyzer enforces the module's cancellation conventions
// (DESIGN.md §11): a context.Context travels down the call graph as an
// exported function's first parameter, and is never stored in a struct.
// A ctx buried mid-signature breaks the CheckContext/TopKContext idiom
// callers pattern-match on; a ctx kept in a field outlives its request and
// silently decouples cancellation from the work it was meant to bound.
var CtxFirstAnalyzer = &Analyzer{
	Name: "ctxfirst",
	Doc:  "context.Context must be an exported function's first parameter and never a struct field",
	Run:  runCtxFirst,
}

// isContextType reports whether t is the context.Context interface.
func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}

func runCtxFirst(pass *Pass) {
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				checkCtxParamOrder(pass, n)
			case *ast.StructType:
				checkCtxStructFields(pass, n)
			}
			return true
		})
	}
}

// checkCtxParamOrder flags exported functions (and methods) whose
// context.Context parameter is not in the leading position. Unexported
// helpers are left alone: the convention binds the API surface.
func checkCtxParamOrder(pass *Pass, fn *ast.FuncDecl) {
	if !fn.Name.IsExported() || fn.Type.Params == nil {
		return
	}
	idx := 0
	for _, field := range fn.Type.Params.List {
		width := len(field.Names)
		if width == 0 {
			width = 1
		}
		if isContextType(pass.TypeOf(field.Type)) && idx > 0 {
			pass.Reportf(field.Pos(), "exported function %s takes context.Context as parameter %d; ctx must be the first parameter", fn.Name.Name, idx+1)
		}
		idx += width
	}
}

// checkCtxStructFields flags struct fields (named or embedded) of type
// context.Context.
func checkCtxStructFields(pass *Pass, st *ast.StructType) {
	for _, field := range st.Fields.List {
		if !isContextType(pass.TypeOf(field.Type)) {
			continue
		}
		name := "embedded field"
		if len(field.Names) > 0 {
			name = "field " + field.Names[0].Name
		}
		pass.Reportf(field.Pos(), "context.Context stored in struct %s; thread ctx through call parameters instead", name)
	}
}
