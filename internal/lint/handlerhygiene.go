package lint

import (
	"go/ast"
	"go/types"
)

// HandlerHygieneAnalyzer enforces response-writing discipline inside
// HTTP handlers (func(w http.ResponseWriter, r *http.Request), as in
// internal/server):
//
//  1. the error returned by w.Write must not be silently dropped — a
//     half-written detection response with a 200 status misleads clients
//     about what was checked (assign it, even to _, to mark intent);
//  2. WriteHeader must not follow a body write on the same straight-line
//     path — net/http ignores the late status, so the client sees 200
//     where the handler meant an error.
//
// The after-write scan is flow-aware per block: writes inside one branch
// do not poison a WriteHeader on the sibling branch.
var HandlerHygieneAnalyzer = &Analyzer{
	Name: "handlerhygiene",
	Doc:  "HTTP handlers must not drop w.Write errors or call WriteHeader after writing the body",
	Run:  runHandlerHygiene,
}

func runHandlerHygiene(pass *Pass) {
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch fn := n.(type) {
			case *ast.FuncDecl:
				if fn.Body != nil && isHandlerSignature(pass.TypeOf(fn.Name)) {
					checkHandler(pass, fn.Body)
				}
			case *ast.FuncLit:
				if isHandlerSignature(pass.TypeOf(fn)) {
					checkHandler(pass, fn.Body)
				}
			}
			return true
		})
	}
}

// isHandlerSignature matches func(http.ResponseWriter, *http.Request).
func isHandlerSignature(t types.Type) bool {
	sig, ok := t.(*types.Signature)
	if !ok || sig.Params().Len() != 2 {
		return false
	}
	if !isNetHTTPType(sig.Params().At(0).Type(), "ResponseWriter") {
		return false
	}
	ptr, ok := sig.Params().At(1).Type().(*types.Pointer)
	return ok && isNetHTTPType(ptr.Elem(), "Request")
}

// isNetHTTPType reports whether t is the named net/http type.
func isNetHTTPType(t types.Type, name string) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == name && obj.Pkg() != nil && obj.Pkg().Path() == "net/http"
}

// checkHandler applies both hygiene rules to one handler body.
func checkHandler(pass *Pass, body *ast.BlockStmt) {
	// Rule 1: bare w.Write statements.
	ast.Inspect(body, func(n ast.Node) bool {
		st, ok := n.(*ast.ExprStmt)
		if !ok {
			return true
		}
		if call, ok := st.X.(*ast.CallExpr); ok && isResponseWriterWrite(pass, call) {
			pass.Reportf(call.Pos(), "return value of w.Write ignored; handle the error or assign it to _ deliberately")
		}
		return true
	})
	// Rule 2: WriteHeader after a definite body write.
	scanWriteOrder(pass, body.List, false)
}

// isResponseWriterWrite matches calls of the form w.Write(...) where w has
// the http.ResponseWriter interface type.
func isResponseWriterWrite(pass *Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Write" {
		return false
	}
	return isNetHTTPType(pass.TypeOf(sel.X), "ResponseWriter")
}

// scanWriteOrder walks a statement list in execution order. Once a
// statement has definitely written the response body, any later
// WriteHeader in the list (or nested under it) is reported. Branching
// statements are scanned with a copy of the flag: a write on one path
// never taints its siblings, so the check is straight-line sound.
func scanWriteOrder(pass *Pass, stmts []ast.Stmt, written bool) {
	for _, s := range stmts {
		if written {
			reportLateWriteHeader(pass, s)
		} else {
			for _, nested := range nestedStmtLists(s) {
				scanWriteOrder(pass, nested, false)
			}
		}
		if stmtWritesBody(pass, s) {
			written = true
		}
	}
}

// reportLateWriteHeader flags every WriteHeader call within a statement.
func reportLateWriteHeader(pass *Pass, s ast.Stmt) {
	ast.Inspect(s, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "WriteHeader" {
			return true
		}
		if isNetHTTPType(pass.TypeOf(sel.X), "ResponseWriter") {
			pass.Reportf(call.Pos(), "WriteHeader after the response body was written; the status line is already sent")
		}
		return true
	})
}

// nestedStmtLists returns the statement lists reachable from a compound
// statement, for branch-isolated scanning.
func nestedStmtLists(s ast.Stmt) [][]ast.Stmt {
	switch st := s.(type) {
	case *ast.BlockStmt:
		return [][]ast.Stmt{st.List}
	case *ast.IfStmt:
		lists := [][]ast.Stmt{st.Body.List}
		if st.Else != nil {
			lists = append(lists, nestedStmtLists(st.Else)...)
		}
		return lists
	case *ast.ForStmt:
		return [][]ast.Stmt{st.Body.List}
	case *ast.RangeStmt:
		return [][]ast.Stmt{st.Body.List}
	case *ast.SwitchStmt:
		return caseBodies(st.Body)
	case *ast.TypeSwitchStmt:
		return caseBodies(st.Body)
	case *ast.SelectStmt:
		return caseBodies(st.Body)
	case *ast.LabeledStmt:
		return nestedStmtLists(st.Stmt)
	}
	return nil
}

func caseBodies(body *ast.BlockStmt) [][]ast.Stmt {
	var lists [][]ast.Stmt
	for _, c := range body.List {
		switch cl := c.(type) {
		case *ast.CaseClause:
			lists = append(lists, cl.Body)
		case *ast.CommClause:
			lists = append(lists, cl.Body)
		}
	}
	return lists
}

// stmtWritesBody reports whether a statement, at its own level, definitely
// writes the response body: a call on a ResponseWriter (w.Write) or any
// call passing the ResponseWriter as an argument (fmt.Fprintf(w, ...),
// writeJSON(w, ...), http.Error(w, ...)). WriteHeader itself does not
// count — it sends the status line, not the body.
func stmtWritesBody(pass *Pass, s ast.Stmt) bool {
	var exprs []ast.Expr
	switch st := s.(type) {
	case *ast.ExprStmt:
		exprs = []ast.Expr{st.X}
	case *ast.AssignStmt:
		exprs = st.Rhs
	case *ast.ReturnStmt:
		exprs = st.Results
	default:
		return false
	}
	for _, e := range exprs {
		call, ok := e.(*ast.CallExpr)
		if !ok {
			continue
		}
		if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
			if sel.Sel.Name == "WriteHeader" && isNetHTTPType(pass.TypeOf(sel.X), "ResponseWriter") {
				continue
			}
			if isNetHTTPType(pass.TypeOf(sel.X), "ResponseWriter") {
				return true
			}
		}
		for _, arg := range call.Args {
			if isNetHTTPType(pass.TypeOf(arg), "ResponseWriter") {
				return true
			}
		}
	}
	return false
}
