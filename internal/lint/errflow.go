package lint

import (
	"go/ast"
	"go/token"
	"go/types"

	"scoded/internal/lint/cfg"
)

// ErrFlowAnalyzer generalizes closecheck with the CFG (DESIGN.md §13): an
// error produced by a durability-critical call must be consulted on every
// path before it goes out of scope. The curated must-check list is the
// store's crash-safety spine — os.File.Sync, os.Rename, Close on a file
// opened for writing, and the store's manifest-swap helpers (swapManifest,
// writeFileAtomic, syncDir). Dropping any of these errors silently breaks
// the durable-before-visible contract: the caller reports success for a
// write the disk never accepted.
//
// Reported shapes:
//
//   - a bare call statement (`f.Sync()`) — the error is discarded outright;
//   - `_ = f.Sync()` — same, spelled explicitly (still a finding for Sync,
//     Rename and the manifest helpers; allowed for Close, where a
//     best-effort close on an error path is idiomatic);
//   - an error assigned and then overwritten before any path checked it;
//   - an error assigned and never consulted on some path to function exit.
//
// "Consulted" means any read: an if condition, a return value, a call
// argument, capture by a closure (including deferred closures, which run at
// exit and therefore clear facts at exit, not where the defer appears), or
// a naked return when the variable is a named result.
var ErrFlowAnalyzer = &Analyzer{
	Name: "errflow",
	Doc:  "error from a durability-critical call (Sync/Rename/Close/manifest swap) unchecked on some path",
	Run:  runErrFlow,
}

// errInfo is the fact payload for one unchecked error variable.
type errInfo struct {
	pos  token.Pos
	desc string // the producing call, e.g. "f.Sync()"
}

type errFact map[types.Object]errInfo

func runErrFlow(pass *Pass) {
	forEachFuncBody(pass.Pkg, func(fb funcBody) {
		checkErrFlow(pass, fb)
	})
}

func checkErrFlow(pass *Pass, fb funcBody) {
	// Writable-file tracking, shared with closecheck: Close is only
	// must-check when its receiver was opened for writing in this function.
	writable := map[types.Object]bool{}
	ast.Inspect(fb.Body, func(n ast.Node) bool {
		asg, ok := n.(*ast.AssignStmt)
		if !ok || len(asg.Rhs) != 1 || len(asg.Lhs) == 0 {
			return true
		}
		call, ok := asg.Rhs[0].(*ast.CallExpr)
		if !ok {
			return true
		}
		if _, ok := writableOpen(pass, call); !ok {
			return true
		}
		if id, ok := asg.Lhs[0].(*ast.Ident); ok && id.Name != "_" {
			if obj := pass.ObjectOf(id); obj != nil {
				writable[obj] = true
			}
		}
		return true
	})

	// A naked `return` in a function with named results reads every named
	// result, so it counts as a check for a tracked named error.
	named := map[types.Object]bool{}
	if fb.Type.Results != nil {
		for _, field := range fb.Type.Results.List {
			for _, id := range field.Names {
				if obj := pass.ObjectOf(id); obj != nil {
					named[obj] = true
				}
			}
		}
	}

	ef := &errFlow{pass: pass, writable: writable, named: named}
	g := cfg.New(fb.Body, pass.Pkg.Info)
	lat := ef.lattice(nil)
	in := cfg.Forward(g, errFact{}, lat)

	// The reporting replay re-runs the same transfer with a sink attached;
	// each node is visited once, so reports cannot duplicate across paths.
	report := lat // silent transfer for fact threading
	cfg.ReplayBlocks(g, in, report, func(_ *cfg.Block, n ast.Node, before errFact) {
		ef.transfer(before, n, func(pos token.Pos, format string, args ...any) {
			pass.Reportf(pos, format, args...)
		})
	})

	// Exit check: facts surviving to Exit minus objects any deferred
	// statement reads (defers run at every exit, so a deferred closure
	// folding the error into a named return is a check).
	exit := in[g.Exit]
	if len(exit) == 0 {
		return
	}
	deferRead := map[types.Object]bool{}
	for _, d := range g.Defers {
		ast.Inspect(d, func(m ast.Node) bool {
			if id, ok := m.(*ast.Ident); ok {
				if obj := pass.ObjectOf(id); obj != nil {
					deferRead[obj] = true
				}
			}
			return true
		})
	}
	for obj, info := range exit {
		if deferRead[obj] {
			continue
		}
		pass.Reportf(info.pos, "error from %s is not checked on every path before %s goes out of scope",
			info.desc, obj.Name())
	}
}

// errFlow bundles the per-function state the lattice closures need.
type errFlow struct {
	pass     *Pass
	writable map[types.Object]bool
	named    map[types.Object]bool // named result parameters
}

// reportFn receives diagnostics during the replay; it is nil during the
// fixpoint iteration so transfers stay pure.
type reportFn func(pos token.Pos, format string, args ...any)

func (ef *errFlow) lattice(report reportFn) cfg.Lattice[errFact] {
	return cfg.Lattice[errFact]{
		Bottom: func() errFact { return errFact{} },
		Transfer: func(f errFact, n ast.Node) errFact {
			return ef.transfer(f, n, report)
		},
		Join: func(a, b errFact) errFact {
			out := make(errFact, len(a)+len(b))
			for k, v := range a {
				out[k] = v
			}
			for k, v := range b {
				if have, ok := out[k]; !ok || v.pos < have.pos {
					out[k] = v
				}
			}
			return out
		},
		Equal: func(a, b errFact) bool {
			if len(a) != len(b) {
				return false
			}
			for k := range a {
				if _, ok := b[k]; !ok {
					return false
				}
			}
			return true
		},
	}
}

// transfer folds one CFG node into the fact, reporting through sink when
// non-nil (the replay pass). Defer statements are inert here: their reads
// count at exit.
func (ef *errFlow) transfer(f errFact, n ast.Node, sink reportFn) errFact {
	if _, ok := n.(*ast.DeferStmt); ok {
		return f
	}
	out := f

	// Reads anywhere in the node (closure bodies included — a captured
	// variable is checked by whoever runs the closure) clear facts.
	// Assignment targets are writes, not reads.
	writes := assignTargets(n)
	clear := func(obj types.Object) {
		if _, tracked := out[obj]; tracked {
			out = cloneErrFact(out)
			delete(out, obj)
		}
	}
	ast.Inspect(n, func(m ast.Node) bool {
		id, ok := m.(*ast.Ident)
		if !ok || writes[id] {
			return true
		}
		if obj := ef.pass.ObjectOf(id); obj != nil {
			clear(obj)
		}
		return true
	})

	switch n := n.(type) {
	case *ast.ReturnStmt:
		if len(n.Results) == 0 {
			for obj := range ef.named {
				clear(obj)
			}
		}
	case *ast.ExprStmt:
		if call, ok := n.X.(*ast.CallExpr); ok {
			if desc, _, ok := ef.mustCheck(call); ok && sink != nil {
				sink(call.Pos(), "error from %s is discarded; a failed %s is silent data loss — check it", desc, desc)
			}
		}
	case *ast.AssignStmt:
		if len(n.Lhs) != len(n.Rhs) {
			break
		}
		for i, rhs := range n.Rhs {
			call, ok := rhs.(*ast.CallExpr)
			var desc string
			var strict, must bool
			if ok {
				desc, strict, must = ef.mustCheck(call)
			}
			id, isIdent := n.Lhs[i].(*ast.Ident)
			if !isIdent {
				continue
			}
			if id.Name == "_" {
				if must && strict && sink != nil {
					sink(call.Pos(), "error from %s is discarded via _; a failed %s is silent data loss — check it", desc, desc)
				}
				continue
			}
			obj := ef.pass.ObjectOf(id)
			if obj == nil {
				continue
			}
			if prev, tracked := out[obj]; tracked {
				if sink != nil {
					sink(n.Pos(), "%s still holds the unchecked error from %s (assigned at line %d) and is overwritten here",
						id.Name, prev.desc, ef.pass.Fset.Position(prev.pos).Line)
				}
				out = cloneErrFact(out)
				delete(out, obj)
			}
			if must {
				out = cloneErrFact(out)
				out[obj] = errInfo{pos: n.Pos(), desc: desc}
			}
		}
	}
	return out
}

func cloneErrFact(f errFact) errFact {
	out := make(errFact, len(f))
	for k, v := range f {
		out[k] = v
	}
	return out
}

// assignTargets collects the identifiers a node writes (plain assignment
// LHS), which must not count as reads.
func assignTargets(n ast.Node) map[*ast.Ident]bool {
	out := map[*ast.Ident]bool{}
	ast.Inspect(n, func(m ast.Node) bool {
		asg, ok := m.(*ast.AssignStmt)
		if !ok || (asg.Tok != token.ASSIGN && asg.Tok != token.DEFINE) {
			return true
		}
		for _, lhs := range asg.Lhs {
			if id, ok := lhs.(*ast.Ident); ok {
				out[id] = true
			}
		}
		return true
	})
	return out
}

// mustCheck classifies a call whose error result must be consulted.
// strict=false (Close) tolerates an explicit `_ =` discard; the
// durability-barrier calls do not.
func (ef *errFlow) mustCheck(call *ast.CallExpr) (desc string, strict, ok bool) {
	var fn *types.Func
	var recv ast.Expr
	switch f := call.Fun.(type) {
	case *ast.SelectorExpr:
		fn, _ = ef.pass.ObjectOf(f.Sel).(*types.Func)
		recv = f.X
	case *ast.Ident:
		fn, _ = ef.pass.ObjectOf(f).(*types.Func)
	}
	if fn == nil {
		return "", false, false
	}
	switch fn.FullName() {
	case "(*os.File).Sync":
		return renderCallee(call) + " (fsync)", true, true
	case "os.Rename":
		return "os.Rename", true, true
	case "(*os.File).Close":
		if id, isIdent := recv.(*ast.Ident); isIdent && ef.writable[ef.pass.ObjectOf(id)] {
			return renderCallee(call) + " on a writable file", false, true
		}
		return "", false, false
	}
	if fn.Pkg() != nil && fn.Pkg().Path() == "scoded/internal/store" {
		switch fn.Name() {
		case "swapManifest", "writeFileAtomic", "syncDir":
			return fn.Name() + " (manifest swap)", true, true
		}
	}
	return "", false, false
}

// renderCallee prints `f.Sync` for diagnostics.
func renderCallee(call *ast.CallExpr) string {
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		if id, ok := sel.X.(*ast.Ident); ok {
			return id.Name + "." + sel.Sel.Name
		}
		return sel.Sel.Name
	}
	if id, ok := call.Fun.(*ast.Ident); ok {
		return id.Name
	}
	return "call"
}
