package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"scoded/internal/lint/cfg"
)

// LockBalanceAnalyzer is the first flow-sensitive analyzer (DESIGN.md §13):
// it tracks sync.Mutex / sync.RWMutex acquisitions through each function's
// control-flow graph and reports
//
//   - a Lock (or RLock) with no matching Unlock on some path to return —
//     an early return or panic that leaves the mutex held deadlocks every
//     future contender;
//   - a second Lock of a mutex that may already be held — self-deadlock;
//   - a lock held across a blocking operation: a channel send/receive, a
//     blocking select, a net/http call, an os.File.Sync, or engine.Run.
//     The server's registries and the store's mutation paths serialize on
//     these mutexes; one goroutine parked on a channel while holding them
//     stalls every request behind it.
//
// Deferred unlocks (including `defer func() { mu.Unlock() }()`) release at
// every exit, so the exit check consults the graph's defer list. Read and
// write sides of an RWMutex are tracked as distinct locks.
var LockBalanceAnalyzer = &Analyzer{
	Name: "lockbalance",
	Doc:  "mutex lock without a matching unlock on some path, double lock, or lock held across a blocking call",
	Run:  runLockBalance,
}

// lockKey identifies one mutex (and side, for RWMutex) within a function:
// the root object plus the selector path reaching the mutex from it.
type lockKey struct {
	root types.Object
	path string
	// read marks the RLock/RUnlock side of an RWMutex.
	read bool
}

// lockInfo is the dataflow fact payload for one held lock.
type lockInfo struct {
	pos  token.Pos
	name string // source-ish rendering, e.g. "s.mu"
}

type lockFact map[lockKey]lockInfo

func runLockBalance(pass *Pass) {
	forEachFuncBody(pass.Pkg, func(fb funcBody) {
		checkLockBalance(pass, fb)
	})
}

func checkLockBalance(pass *Pass, fb funcBody) {
	g := cfg.New(fb.Body, pass.Pkg.Info)
	lat := lockLattice(pass)
	in := cfg.Forward(g, lockFact{}, lat)

	// Reporting pass 1: double locks and blocking operations under a lock.
	reported := map[token.Pos]bool{}
	cfg.ReplayBlocks(g, in, lat, func(b *cfg.Block, n ast.Node, before lockFact) {
		if _, ok := n.(*ast.DeferStmt); ok {
			return // runs at exit, not here
		}
		for _, op := range lockOps(pass, n) {
			if !op.acquire {
				continue
			}
			if held, ok := before[op.key]; ok && !reported[op.pos] {
				reported[op.pos] = true
				pass.Reportf(op.pos, "%s%s is locked again while already held (locked at line %d); this deadlocks",
					op.info.name, lockSide(op.key), pass.Fset.Position(held.pos).Line)
			}
		}
		if len(before) == 0 {
			return
		}
		desc, pos := blockingOp(pass, g, n)
		if desc == "" || reported[pos] {
			return
		}
		reported[pos] = true
		for _, held := range sortedLocks(before) {
			pass.Reportf(pos, "%s is held across %s (locked at line %d); a blocked goroutine here stalls every contender",
				held.name, desc, pass.Fset.Position(held.pos).Line)
			break // one report per site names the first-acquired lock
		}
	})

	// Reporting pass 2: locks still held at exit, minus deferred releases.
	exit := in[g.Exit]
	if len(exit) == 0 {
		return
	}
	released := deferredReleases(pass, g)
	for key, info := range exit {
		if released[key] || reported[info.pos] {
			continue
		}
		reported[info.pos] = true
		pass.Reportf(info.pos, "%s%s is not released on every path to return; an early exit leaves it held forever",
			info.name, lockSide(key))
	}
}

// lockSide renders the RWMutex side for diagnostics.
func lockSide(k lockKey) string {
	if k.read {
		return " (read side)"
	}
	return ""
}

func sortedLocks(f lockFact) []lockInfo {
	out := make([]lockInfo, 0, len(f))
	for _, info := range f {
		out = append(out, info)
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j].pos < out[j-1].pos; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// lockLattice is the may-held analysis: union join, transfer applies each
// node's lock and unlock calls in order. Defer statements are skipped here
// (they execute at exit).
func lockLattice(pass *Pass) cfg.Lattice[lockFact] {
	return cfg.Lattice[lockFact]{
		Bottom: func() lockFact { return lockFact{} },
		Transfer: func(f lockFact, n ast.Node) lockFact {
			if _, ok := n.(*ast.DeferStmt); ok {
				return f
			}
			ops := lockOps(pass, n)
			if len(ops) == 0 {
				return f
			}
			out := make(lockFact, len(f))
			for k, v := range f {
				out[k] = v
			}
			for _, op := range ops {
				if op.acquire {
					if _, held := out[op.key]; !held {
						out[op.key] = op.info
					}
				} else {
					delete(out, op.key)
				}
			}
			return out
		},
		Join: func(a, b lockFact) lockFact {
			out := make(lockFact, len(a)+len(b))
			for k, v := range a {
				out[k] = v
			}
			for k, v := range b {
				if have, ok := out[k]; !ok || v.pos < have.pos {
					out[k] = v
				}
			}
			return out
		},
		Equal: func(a, b lockFact) bool {
			if len(a) != len(b) {
				return false
			}
			for k := range a {
				if _, ok := b[k]; !ok {
					return false
				}
			}
			return true
		},
	}
}

// lockOp is one Lock/Unlock-family call found inside a node.
type lockOp struct {
	key     lockKey
	info    lockInfo
	acquire bool
	pos     token.Pos
}

// lockOps extracts the mutex operations a node performs, in source order.
func lockOps(pass *Pass, n ast.Node) []lockOp {
	var ops []lockOp
	cfg.Inspect(n, func(m ast.Node) bool {
		call, ok := m.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		fn, ok := pass.ObjectOf(sel.Sel).(*types.Func)
		if !ok {
			return true
		}
		acquire, read, ok := mutexMethod(fn)
		if !ok {
			return true
		}
		key, name, resolved := lockExprKey(pass, sel.X, read)
		if !resolved {
			return true
		}
		ops = append(ops, lockOp{
			key:     key,
			info:    lockInfo{pos: call.Pos(), name: name},
			acquire: acquire,
			pos:     call.Pos(),
		})
		return true
	})
	return ops
}

// mutexMethod classifies a called function as a mutex acquire/release.
func mutexMethod(fn *types.Func) (acquire, read, ok bool) {
	switch fn.FullName() {
	case "(*sync.Mutex).Lock", "(*sync.RWMutex).Lock", "(sync.Locker).Lock":
		return true, false, true
	case "(*sync.Mutex).Unlock", "(*sync.RWMutex).Unlock", "(sync.Locker).Unlock":
		return false, false, true
	case "(*sync.RWMutex).RLock":
		return true, true, true
	case "(*sync.RWMutex).RUnlock":
		return false, true, true
	}
	return false, false, false
}

// lockExprKey resolves the mutex expression (`mu`, `s.mu`, `st.pmu`) to a
// stable key rooted at a types.Object. Expressions with a non-identifier
// root (map lookups, function results) are not tracked.
func lockExprKey(pass *Pass, e ast.Expr, read bool) (lockKey, string, bool) {
	var parts []string
	for {
		switch x := e.(type) {
		case *ast.ParenExpr:
			e = x.X
		case *ast.SelectorExpr:
			parts = append([]string{x.Sel.Name}, parts...)
			e = x.X
		case *ast.Ident:
			obj := pass.ObjectOf(x)
			if obj == nil {
				return lockKey{}, "", false
			}
			name := strings.Join(append([]string{x.Name}, parts...), ".")
			return lockKey{root: obj, path: strings.Join(parts, "."), read: read}, name, true
		default:
			return lockKey{}, "", false
		}
	}
}

// deferredReleases collects the lock keys released by the function's defer
// statements: direct `defer mu.Unlock()` and the closure idiom
// `defer func() { mu.Unlock() }()`.
func deferredReleases(pass *Pass, g *cfg.Graph) map[lockKey]bool {
	out := map[lockKey]bool{}
	record := func(n ast.Node) {
		ast.Inspect(n, func(m ast.Node) bool {
			call, ok := m.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fn, ok := pass.ObjectOf(sel.Sel).(*types.Func)
			if !ok {
				return true
			}
			acquire, read, isMutex := mutexMethod(fn)
			if !isMutex || acquire {
				return true
			}
			if key, _, resolved := lockExprKey(pass, sel.X, read); resolved {
				out[key] = true
			}
			return true
		})
	}
	for _, d := range g.Defers {
		record(d.Call)
	}
	return out
}

// blockingOp reports whether executing node n can park the goroutine,
// returning a description and the position to report at. Select comm
// clauses are skipped: the SelectStmt itself is the blocking point.
func blockingOp(pass *Pass, g *cfg.Graph, n ast.Node) (string, token.Pos) {
	if g.IsComm(n) {
		return "", token.NoPos
	}
	switch n := n.(type) {
	case *ast.SelectStmt:
		for _, cl := range n.Body.List {
			if cc, ok := cl.(*ast.CommClause); ok && cc.Comm == nil {
				return "", token.NoPos // a default arm makes select non-blocking
			}
		}
		return "a blocking select", n.Pos()
	case *ast.RangeStmt:
		if t := pass.TypeOf(n.X); t != nil {
			if _, isChan := t.Underlying().(*types.Chan); isChan {
				return "a channel range", n.Pos()
			}
		}
		return "", token.NoPos
	case *ast.DeferStmt:
		return "", token.NoPos
	}

	var desc string
	var pos token.Pos
	cfg.Inspect(n, func(m ast.Node) bool {
		if desc != "" {
			return false
		}
		switch m := m.(type) {
		case *ast.SendStmt:
			desc, pos = "a channel send", m.Arrow
		case *ast.UnaryExpr:
			if m.Op == token.ARROW {
				desc, pos = "a channel receive", m.OpPos
			}
		case *ast.CallExpr:
			if d := blockingCall(pass, m); d != "" {
				desc, pos = d, m.Pos()
			}
		}
		return true
	})
	return desc, pos
}

// httpBlocking lists the net/http entry points that perform network I/O.
// Accessors like (*http.Request).Context or Header.Get are pure and must
// not count.
var httpBlocking = map[string]bool{
	"net/http.Get": true, "net/http.Post": true, "net/http.PostForm": true,
	"net/http.Head": true, "net/http.ListenAndServe": true,
	"net/http.ListenAndServeTLS": true, "net/http.Serve": true,
	"net/http.ServeTLS":     true,
	"(*net/http.Client).Do": true, "(*net/http.Client).Get": true,
	"(*net/http.Client).Post": true, "(*net/http.Client).PostForm": true,
	"(*net/http.Client).Head":           true,
	"(*net/http.Server).ListenAndServe": true, "(*net/http.Server).Serve": true,
	"(*net/http.Server).ListenAndServeTLS": true, "(*net/http.Server).ServeTLS": true,
	"(*net/http.Server).Shutdown": true,
}

// blockingCall classifies calls that block on I/O or scheduling: net/http
// request/serve calls, os.File.Sync (a disk barrier), the store's
// fsync-barrier helpers, and engine.Run (waits for a whole worker-pool
// batch).
func blockingCall(pass *Pass, call *ast.CallExpr) string {
	var fn *types.Func
	switch f := call.Fun.(type) {
	case *ast.SelectorExpr:
		fn, _ = pass.ObjectOf(f.Sel).(*types.Func)
	case *ast.Ident:
		fn, _ = pass.ObjectOf(f).(*types.Func)
	}
	if fn == nil || fn.Pkg() == nil {
		return ""
	}
	if httpBlocking[fn.FullName()] {
		return "net/http call " + fn.Name()
	}
	switch fn.Pkg().Path() {
	case "scoded/internal/engine":
		if fn.Name() == "Run" {
			return "engine.Run (waits for a worker-pool batch)"
		}
	case "scoded/internal/store":
		switch fn.Name() {
		case "swapManifest", "writeFileAtomic", "syncDir":
			return fn.Name() + " (a store fsync barrier)"
		}
	}
	if fn.FullName() == "(*os.File).Sync" {
		return "os.File.Sync (a disk write barrier)"
	}
	return ""
}
