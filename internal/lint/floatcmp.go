package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// FloatCmpAnalyzer flags == and != between float-typed operands. SCODED's
// decisions hang on p-values and test statistics (Algorithm 1 rejects when
// p < α), and exact equality on the floats feeding those decisions is
// almost always a latent bug: a p-value that should compare equal differs
// in the last ulp after a different summation order, and NaN breaks every
// equality. Compare with a tolerance, an ordered guard (x <= 0 for a
// sum-of-squares), or math.IsNaN; where exactness is genuinely intended —
// tie detection, sentinel values — record why with
// //scoded:lint-ignore floatcmp <reason>.
var FloatCmpAnalyzer = &Analyzer{
	Name: "floatcmp",
	Doc:  "disallow ==/!= on float operands; use tolerances, ordered guards, or math.IsNaN",
	Run:  runFloatCmp,
}

func runFloatCmp(pass *Pass) {
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			be, ok := n.(*ast.BinaryExpr)
			if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
				return true
			}
			xt, xc := typeAndConst(pass, be.X)
			yt, yc := typeAndConst(pass, be.Y)
			if !isFloat(xt) && !isFloat(yt) {
				return true
			}
			if xc && yc {
				// Both sides are compile-time constants: the comparison is
				// exact by construction.
				return true
			}
			pass.Reportf(be.OpPos, "float operands compared with %s; use a tolerance, an ordered guard, or math.IsNaN", be.Op)
			return true
		})
	}
}

// typeAndConst returns an expression's type and whether it is a constant.
func typeAndConst(pass *Pass, e ast.Expr) (types.Type, bool) {
	tv, ok := pass.Pkg.Info.Types[e]
	if !ok {
		return nil, false
	}
	return tv.Type, tv.Value != nil
}

// isFloat reports whether a type's underlying kind is a float.
func isFloat(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}
