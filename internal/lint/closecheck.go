package lint

import (
	"go/ast"
	"go/types"
)

// CloseCheckAnalyzer guards the durability contract the storage layer
// introduced (DESIGN.md §12): on many filesystems a write failure only
// surfaces at Close, so `defer f.Close()` on a file opened for writing
// silently discards the one error that distinguishes a persisted file from
// a truncated one. The store's manifest swap and the CSV writer both close
// explicitly and propagate the error; this analyzer keeps every future
// writable-file site honest.
//
// A function is flagged when it opens a file for writing — os.Create,
// os.CreateTemp, or os.OpenFile with a write flag (O_WRONLY, O_RDWR,
// O_APPEND, O_CREATE, O_TRUNC) — and defers that file's Close directly,
// unless the function also consults a Close error for the same file
// elsewhere (assigned to a non-blank variable, tested in an if, or
// returned). The closure idiom
//
//	defer func() {
//		if cerr := f.Close(); err == nil {
//			err = cerr
//		}
//	}()
//
// consults the error inside the deferred function and is therefore clean.
// Read-only files are exempt: their Close error carries no data-loss
// signal.
var CloseCheckAnalyzer = &Analyzer{
	Name: "closecheck",
	Doc:  "deferred Close on a file opened for writing discards the error that reports a failed write-back",
	Run:  runCloseCheck,
}

func runCloseCheck(pass *Pass) {
	for _, f := range pass.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkCloseFunc(pass, fd.Body)
		}
	}
}

// checkCloseFunc applies the rule within one function body, closures
// included: a closure that consults f.Close()'s error counts for the
// enclosing function, matching the standard deferred-close idiom.
func checkCloseFunc(pass *Pass, body *ast.BlockStmt) {
	// Pass 1: which variables hold files opened for writing, and by what.
	opened := map[types.Object]string{}
	ast.Inspect(body, func(n ast.Node) bool {
		asg, ok := n.(*ast.AssignStmt)
		if !ok || len(asg.Rhs) != 1 || len(asg.Lhs) == 0 {
			return true
		}
		call, ok := asg.Rhs[0].(*ast.CallExpr)
		if !ok {
			return true
		}
		opener, writable := writableOpen(pass, call)
		if !writable {
			return true
		}
		if id, ok := asg.Lhs[0].(*ast.Ident); ok && id.Name != "_" {
			if obj := pass.ObjectOf(id); obj != nil {
				opened[obj] = opener
			}
		}
		return true
	})
	if len(opened) == 0 {
		return
	}

	// Pass 2: direct `defer f.Close()` statements versus sites that consult
	// a Close error (assignment, if-init, return). A bare `f.Close()`
	// expression statement or a `_ =` assignment consults nothing.
	type deferredClose struct {
		call *ast.CallExpr
		obj  types.Object
	}
	var defers []deferredClose
	consulted := map[types.Object]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.DeferStmt:
			if obj := closeTarget(pass, n.Call); obj != nil {
				if _, ok := opened[obj]; ok {
					defers = append(defers, deferredClose{n.Call, obj})
				}
			}
		case *ast.AssignStmt:
			blank := true
			for _, lhs := range n.Lhs {
				if !isBlankIdent(lhs) {
					blank = false
				}
			}
			if blank {
				return true
			}
			for _, rhs := range n.Rhs {
				if call, ok := rhs.(*ast.CallExpr); ok {
					if obj := closeTarget(pass, call); obj != nil {
						consulted[obj] = true
					}
				}
			}
		case *ast.ReturnStmt:
			for _, res := range n.Results {
				if call, ok := res.(*ast.CallExpr); ok {
					if obj := closeTarget(pass, call); obj != nil {
						consulted[obj] = true
					}
				}
			}
		}
		return true
	})

	for _, d := range defers {
		if consulted[d.obj] {
			continue
		}
		pass.Reportf(d.call.Pos(),
			"deferred Close on file from %s discards the error; a failed write-back can only surface at Close — check it explicitly or fold it into a named return",
			opened[d.obj])
	}
}

// writableOpen reports whether a call opens an *os.File for writing,
// returning the qualified opener name. os.OpenFile counts only when its
// flag argument syntactically mentions a write flag; a flags variable is
// conservatively treated as read-only to avoid false positives.
func writableOpen(pass *Pass, call *ast.CallExpr) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	fn, ok := pass.ObjectOf(sel.Sel).(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "os" {
		return "", false
	}
	switch fn.Name() {
	case "Create", "CreateTemp":
		return "os." + fn.Name(), true
	case "OpenFile":
		if len(call.Args) >= 2 && mentionsWriteFlag(call.Args[1]) {
			return "os.OpenFile", true
		}
	}
	return "", false
}

// writeFlags are the os.OpenFile flags that imply the file may be written.
var writeFlags = map[string]bool{
	"O_WRONLY": true,
	"O_RDWR":   true,
	"O_APPEND": true,
	"O_CREATE": true,
	"O_TRUNC":  true,
}

func mentionsWriteFlag(e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SelectorExpr:
			if writeFlags[n.Sel.Name] {
				found = true
			}
			return false // don't re-inspect the selector's Sel as an Ident
		case *ast.Ident:
			if writeFlags[n.Name] {
				found = true
			}
		}
		return true
	})
	return found
}

// closeTarget resolves a direct `<ident>.Close()` call to the identifier's
// object, or nil for anything else (closures, chained calls, other
// methods).
func closeTarget(pass *Pass, call *ast.CallExpr) types.Object {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Close" || len(call.Args) != 0 {
		return nil
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return nil
	}
	return pass.ObjectOf(id)
}
