// Package lint implements scoded-lint: a from-scratch static analysis
// driver, built only on the standard library's go/parser, go/ast, go/types
// and go/token, that enforces SCODED's statistical-correctness invariants
// at the source level. The compiler cannot see that p-values must stay in
// [0,1], that hypothesis tests must be reproducible under an injected RNG,
// or that a detect.Result with a non-nil Err carries a meaningless zero
// p-value; the analyzers in this package can (DESIGN.md §8).
//
// The driver type-checks every package in the module (skipping _test.go
// files and testdata directories), runs a pluggable set of analyzers, and
// reports vet-style "file:line:col: analyzer: message" diagnostics.
// Findings can be suppressed with a justification comment on the offending
// line or the line above it:
//
//	//scoded:lint-ignore <analyzer> <reason>
//
// A directive without a reason is itself reported. Analyzer fixtures under
// testdata/ carry `// want "regexp"` comments and are replayed by the test
// harness, so a drifting diagnostic fails the analyzer's own tests.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Analyzer is one named invariant check. Run inspects a single type-checked
// package and reports findings through the Pass.
type Analyzer struct {
	// Name is the identifier used in diagnostics and suppression comments.
	Name string
	// Doc is a one-line description of the guarded invariant.
	Doc string
	// Run executes the check over pass.Pkg.
	Run func(pass *Pass)
}

// Pass carries one analyzer's view of one package plus the diagnostic sink.
type Pass struct {
	Analyzer *Analyzer
	Pkg      *Package
	Fset     *token.FileSet

	diags *[]Diagnostic
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// TypeOf returns the type of an expression, or nil when unknown.
func (p *Pass) TypeOf(e ast.Expr) types.Type {
	if tv, ok := p.Pkg.Info.Types[e]; ok {
		return tv.Type
	}
	if id, ok := e.(*ast.Ident); ok {
		if obj := p.Pkg.Info.ObjectOf(id); obj != nil {
			return obj.Type()
		}
	}
	return nil
}

// ObjectOf resolves the object behind an identifier, or nil.
func (p *Pass) ObjectOf(id *ast.Ident) types.Object {
	return p.Pkg.Info.ObjectOf(id)
}

// Diagnostic is one finding, addressable as file:line:col.
type Diagnostic struct {
	Analyzer string         `json:"analyzer"`
	Pos      token.Position `json:"-"`
	Message  string         `json:"message"`
}

// String renders the vet-style "file:line:col: analyzer: message" form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// sortDiagnostics orders findings by file, line, column, analyzer, message.
func sortDiagnostics(ds []Diagnostic) {
	sort.Slice(ds, func(i, j int) bool {
		a, b := ds[i], ds[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
}

// Analyzers returns every registered analyzer, in reporting order. The
// first seven are syntactic/type-level; the last four are flow-sensitive,
// built on the internal/lint/cfg control-flow and dataflow layer.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		AllocHotAnalyzer,
		FloatCmpAnalyzer,
		GlobalRandAnalyzer,
		ResultErrAnalyzer,
		HandlerHygieneAnalyzer,
		CtxFirstAnalyzer,
		CloseCheckAnalyzer,
		LockBalanceAnalyzer,
		GoroLeakAnalyzer,
		ErrFlowAnalyzer,
		DeferLoopAnalyzer,
	}
}

// AnalyzerByName resolves one analyzer by its Name.
func AnalyzerByName(name string) (*Analyzer, bool) {
	for _, a := range Analyzers() {
		if a.Name == name {
			return a, true
		}
	}
	return nil, false
}
