package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// GoroLeakAnalyzer enforces the PR-5 execution discipline (DESIGN.md §11,
// §13): every concurrent path rides the cancellable engine, and any raw
// goroutine must carry a way to be stopped or awaited. A `go` statement
// that captures neither a context.Context, a *sync.WaitGroup, nor a channel
// has no cancellation and no completion signal — it outlives request
// deadlines, leaks under load, and turns graceful shutdown into a race.
//
// The check is a capture scan over the spawned call (arguments and, for a
// function literal, its body): referencing any value whose type is
// context.Context, sync.WaitGroup, or a channel counts as a signal.
// internal/engine itself is exempt — it is the one place allowed to own
// raw worker goroutines, and its pool already joins them.
var GoroLeakAnalyzer = &Analyzer{
	Name: "goroleak",
	Doc:  "raw goroutine with no context, WaitGroup, or channel: it can neither be cancelled nor awaited",
	Run:  runGoroLeak,
}

func runGoroLeak(pass *Pass) {
	if strings.HasSuffix(pass.Pkg.ImportPath, "internal/engine") {
		return
	}
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			gs, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			if goCapturesSignal(pass, gs) {
				return true
			}
			pass.Reportf(gs.Pos(), "goroutine captures no context.Context, sync.WaitGroup, or channel; nothing can cancel or await it — run it on engine.Run or pass a done signal")
			return true
		})
	}
}

// goCapturesSignal reports whether the spawned call references any value
// that can stop or join the goroutine.
func goCapturesSignal(pass *Pass, gs *ast.GoStmt) bool {
	found := false
	ast.Inspect(gs.Call, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.Ident:
			if isSignalType(pass.TypeOf(n)) {
				found = true
			}
		case *ast.SelectorExpr:
			if isSignalType(pass.TypeOf(n)) {
				found = true
			}
		case *ast.ChanType:
			// make(chan ...) inside the literal: a channel is being created
			// for someone to communicate over.
			found = true
		}
		return !found
	})
	return found
}

// isSignalType recognizes the three cancellation/completion carriers.
func isSignalType(t types.Type) bool {
	if t == nil {
		return false
	}
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	if _, ok := t.Underlying().(*types.Chan); ok {
		return true
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil {
		return false
	}
	switch obj.Pkg().Path() {
	case "context":
		return obj.Name() == "Context"
	case "sync":
		return obj.Name() == "WaitGroup"
	}
	return false
}
