// Fixture for the lockbalance analyzer: every path must release what it
// locks, no path may re-lock a held mutex, and nothing blocking may run
// under a lock.
package lockbalance

import (
	"context"
	"errors"
	"net/http"
	"os"
	"sync"

	"scoded/internal/engine"
)

var errEarly = errors.New("early")

type counter struct {
	mu sync.Mutex
	rw sync.RWMutex
	n  int
}

// BAD: the early return path leaves the mutex held.
func (c *counter) leakOnError(fail bool) error {
	c.mu.Lock() // want "not released on every path"
	if fail {
		return errEarly
	}
	c.n++
	c.mu.Unlock()
	return nil
}

// BAD: a panic path also skips the unlock.
func (c *counter) leakOnPanic(fail bool) {
	c.mu.Lock() // want "not released on every path"
	if fail {
		panic("boom")
	}
	c.mu.Unlock()
}

// GOOD: defer releases on every path, early return included.
func (c *counter) deferredUnlock(fail bool) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if fail {
		return errEarly
	}
	c.n++
	return nil
}

// GOOD: both branches release explicitly.
func (c *counter) branchBalanced(x bool) {
	c.mu.Lock()
	if x {
		c.n++
		c.mu.Unlock()
		return
	}
	c.mu.Unlock()
}

// GOOD: the deferred closure idiom releases too.
func (c *counter) closureUnlock() {
	c.mu.Lock()
	defer func() {
		c.mu.Unlock()
	}()
	c.n++
}

// BAD: locking a mutex that is already held deadlocks immediately.
func (c *counter) doubleLock() {
	c.mu.Lock()
	c.mu.Lock() // want "locked again while already held"
	c.n++
	c.mu.Unlock()
	c.mu.Unlock()
}

// GOOD: lock and unlock per iteration; the loop's back edge carries an
// empty held-set.
func (c *counter) perIteration(k int) {
	for i := 0; i < k; i++ {
		c.mu.Lock()
		c.n++
		c.mu.Unlock()
	}
}

// BAD: the read lock leaks on the early-return path.
func (c *counter) readLeak(fail bool) (int, error) {
	c.rw.RLock() // want "read side.*not released on every path"
	if fail {
		return 0, errEarly
	}
	n := c.n
	c.rw.RUnlock()
	return n, nil
}

// GOOD: read and write sides are tracked independently.
func (c *counter) readThenWrite() {
	c.rw.RLock()
	n := c.n
	c.rw.RUnlock()
	c.rw.Lock()
	c.n = n + 1
	c.rw.Unlock()
}

// BAD: channel operations park the goroutine while the lock is held.
func (c *counter) channelUnderLock(ch chan int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	ch <- c.n  // want "held across a channel send"
	c.n = <-ch // want "held across a channel receive"
}

// BAD: a select with no default blocks under the lock.
func (c *counter) selectUnderLock(ch, done chan int) {
	c.mu.Lock()
	select { // want "held across a blocking select"
	case <-ch:
	case <-done:
	}
	c.mu.Unlock()
}

// GOOD: a select with a default arm polls and moves on.
func (c *counter) pollUnderLock(ch chan int) {
	c.mu.Lock()
	select {
	case <-ch:
	default:
	}
	c.mu.Unlock()
}

// BAD: I/O and pool barriers under the lock stall every contender.
func (c *counter) ioUnderLock(ctx context.Context, f *os.File, url string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := f.Sync(); err != nil { // want "held across os.File.Sync"
		return err
	}
	resp, err := http.Get(url) // want "held across net/http call Get"
	if err != nil {
		return err
	}
	_ = resp.Body.Close()
	errs := engine.Run(ctx, 1, engine.Options{}, func(context.Context, int) error { return nil }) // want "held across engine.Run"
	return errs[0]
}

// GOOD: compute the snapshot under the lock, do the blocking work outside.
func (c *counter) snapshotThenSync(f *os.File) error {
	c.mu.Lock()
	n := c.n
	c.mu.Unlock()
	_ = n
	return f.Sync()
}

// GOOD: a justified suppression records why the lock is intentionally
// held across the barrier.
func (c *counter) durableUnderLock(f *os.File) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	//scoded:lint-ignore lockbalance mutation path serializes durability on purpose: contenders must observe the fsynced state
	return f.Sync()
}
