// Fixture for the unused-directive sweep: a suppression kept as
// documentation under testdata must not be reported as stale when a full
// run explicitly targets this directory.
package unuseddir

//scoded:lint-ignore floatcmp documentation example; nothing on this line trips the analyzer
var kept = 1
