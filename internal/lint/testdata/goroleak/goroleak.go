// Fixture for the goroleak analyzer: every raw goroutine must carry a
// cancellation or completion signal.
package goroleak

import (
	"context"
	"sync"
)

func work() {}

func consume(done chan struct{}) { <-done }

// BAD: nothing can stop or await this goroutine.
func bareClosure() {
	go func() { // want "captures no context.Context, sync.WaitGroup, or channel"
		work()
	}()
}

// BAD: a named function without a signal argument is just as orphaned.
func bareNamed() {
	go work() // want "captures no context.Context, sync.WaitGroup, or channel"
}

// GOOD: the context both cancels the goroutine and bounds its lifetime.
func withContext(ctx context.Context) {
	go func() {
		<-ctx.Done()
	}()
}

// GOOD: the WaitGroup lets the spawner join the goroutine.
func withWaitGroup(wg *sync.WaitGroup) {
	wg.Add(1)
	go func() {
		defer wg.Done()
		work()
	}()
}

// GOOD: a done channel is a completion signal, whether captured by a
// closure or passed to a named worker.
func withDoneChannel() {
	done := make(chan struct{})
	go consume(done)
	close(done)
}

// GOOD: sending the result over a channel is an awaitable completion.
func withResultChannel() <-chan int {
	out := make(chan int, 1)
	go func() {
		out <- 42
	}()
	return out
}

// BAD, suppressed: the justification is recorded where the rule bends.
func suppressed() {
	//scoded:lint-ignore goroleak fire-and-forget logger flush; process exit bounds it
	go work()
}
