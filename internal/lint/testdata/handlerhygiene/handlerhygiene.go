// Package handlerhygiene is the fixture for the handlerhygiene analyzer:
// HTTP handlers must not drop w.Write errors and must send the status line
// before the body.
package handlerhygiene

import (
	"fmt"
	"net/http"
)

func badIgnoredWrite(w http.ResponseWriter, r *http.Request) {
	w.Write([]byte("ok")) // want "return value of w.Write ignored"
}

func badLateHeader(w http.ResponseWriter, r *http.Request) {
	fmt.Fprintln(w, "body first")
	w.WriteHeader(http.StatusTeapot) // want "WriteHeader after the response body was written"
}

func badLateHeaderNested(w http.ResponseWriter, r *http.Request) {
	_, _ = w.Write([]byte("body"))
	if r.URL.Query().Get("fail") != "" {
		w.WriteHeader(http.StatusInternalServerError) // want "WriteHeader after the response body was written"
	}
}

var badHandlerLit = http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
	w.Write([]byte("hi")) // want "return value of w.Write ignored"
})

func goodOrder(w http.ResponseWriter, r *http.Request) {
	w.WriteHeader(http.StatusAccepted)
	fmt.Fprintln(w, "accepted")
}

func goodBranchIsolation(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path == "/broken" {
		fmt.Fprintln(w, "error body")
		return
	}
	w.WriteHeader(http.StatusOK)
	fmt.Fprintln(w, "ok")
}

func goodDeliberateDiscard(w http.ResponseWriter, r *http.Request) {
	_, _ = w.Write([]byte("ok"))
}

// notAHandler has the wrong shape; the analyzer must leave it alone.
func notAHandler(w http.ResponseWriter) {
	w.Write([]byte("ignored on purpose: not a handler"))
}
