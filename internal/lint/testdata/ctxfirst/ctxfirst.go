// Package ctxfirst is the fixture for the ctxfirst analyzer: a
// context.Context flows down the call graph as the first parameter of
// exported functions and is never stored in a struct.
package ctxfirst

import "context"

type BadHolder struct {
	ctx context.Context // want "context.Context stored in struct field ctx"
	n   int
}

type BadEmbed struct {
	context.Context // want "context.Context stored in struct embedded field"
}

func BadSecond(name string, ctx context.Context) error { // want "BadSecond takes context.Context as parameter 2"
	_ = name
	return ctx.Err()
}

func BadThird(a, b int, ctx context.Context) { // want "BadThird takes context.Context as parameter 3"
	_, _, _ = a, b, ctx
}

type Client struct{ n int }

func (c *Client) BadMethod(name string, ctx context.Context) { // want "BadMethod takes context.Context as parameter 2"
	_, _ = name, ctx
}

func GoodFirst(ctx context.Context, name string) error {
	_ = name
	return ctx.Err()
}

func GoodNoCtx(n int) int { return n + 1 }

// goodUnexported may order params freely: the convention binds only the
// exported API surface.
func goodUnexported(name string, ctx context.Context) {
	_, _ = name, ctx
}

type GoodOptions struct {
	Retries int
}
