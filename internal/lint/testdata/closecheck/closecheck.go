// Package closecheck is the fixture for the closecheck analyzer: a file
// opened for writing may only report a failed write-back at Close, so a
// plain `defer f.Close()` throws that error away.
package closecheck

import "os"

func badDeferredCreate(path string, data []byte) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close() // want "deferred Close on file from os.Create discards the error"
	_, err = f.Write(data)
	return err
}

func badDeferredTemp(dir string, data []byte) (string, error) {
	f, err := os.CreateTemp(dir, "out-*")
	if err != nil {
		return "", err
	}
	defer f.Close() // want "deferred Close on file from os.CreateTemp discards the error"
	if _, err := f.Write(data); err != nil {
		return "", err
	}
	return f.Name(), nil
}

func badDeferredOpenFile(path string, data []byte) error {
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	defer f.Close() // want "deferred Close on file from os.OpenFile discards the error"
	_, err = f.Write(data)
	return err
}

// goodNamedReturn folds the deferred Close error into the named return —
// the standard idiom, and clean because the closure consults the error.
func goodNamedReturn(path string, data []byte) (err error) {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer func() {
		if cerr := f.Close(); err == nil {
			err = cerr
		}
	}()
	_, err = f.Write(data)
	return err
}

// goodExplicitClose checks Close on the success path; the remaining defer
// is a double-close safety net whose error no longer matters.
func goodExplicitClose(path string, data []byte) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if _, err := f.Write(data); err != nil {
		return err
	}
	return f.Close()
}

// goodReadOnly defers Close on a read-only file: nothing was written, so
// the Close error carries no data-loss signal.
func goodReadOnly(path string) ([]byte, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	buf := make([]byte, 16)
	n, err := f.Read(buf)
	if err != nil {
		return nil, err
	}
	return buf[:n], nil
}

// goodReadOnlyOpenFile passes O_RDONLY explicitly; no write flag, no
// finding.
func goodReadOnlyOpenFile(path string) error {
	f, err := os.OpenFile(path, os.O_RDONLY, 0)
	if err != nil {
		return err
	}
	defer f.Close()
	return nil
}
