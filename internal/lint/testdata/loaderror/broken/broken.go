// Package broken fails to type-check on purpose. The driver must report
// this even when the analysis patterns match only a sibling package:
// exiting 0 on a module that does not compile hides every finding.
package broken

// Busted assigns an int to a string.
func Busted() int {
	var s string = 42
	return len(s)
}
