module loaderror

go 1.22
