// Package good compiles cleanly; it is the package the regression test
// asks scoded-lint to analyze while its sibling fails to type-check.
package good

// Fine returns a constant.
func Fine() int { return 1 }
