// Fixture for the deferloop analyzer: a defer inside a loop releases
// nothing until the whole function returns.
package deferloop

import (
	"os"
	"sync"
)

func read(f *os.File) {}

// BAD: every segment file stays open until the function exits — a
// streaming scan becomes O(segments) descriptors.
func perSegment(paths []string) error {
	for _, p := range paths {
		f, err := os.Open(p)
		if err != nil {
			return err
		}
		defer f.Close() // want "defer f.Close\\(\\) inside a loop"
		read(f)
	}
	return nil
}

// BAD: the first iteration's lock is held across all later iterations.
func perShard(mus []*sync.Mutex) {
	for _, mu := range mus {
		mu.Lock()
		defer mu.Unlock() // want "defer mu.Unlock\\(\\) inside a loop"
	}
}

// BAD: wrapping the release in a closure changes nothing.
func wrappedRelease(paths []string) error {
	for _, p := range paths {
		f, err := os.Open(p)
		if err != nil {
			return err
		}
		defer func() { // want "inside a loop"
			f.Close()
		}()
		read(f)
	}
	return nil
}

// GOOD: a per-iteration function scopes the defer to one iteration.
func perIterationScope(paths []string) error {
	for _, p := range paths {
		if err := func() error {
			f, err := os.Open(p)
			if err != nil {
				return err
			}
			defer f.Close()
			read(f)
			return nil
		}(); err != nil {
			return err
		}
	}
	return nil
}

// GOOD: releasing at the end of the iteration body.
func explicitRelease(paths []string) error {
	for _, p := range paths {
		f, err := os.Open(p)
		if err != nil {
			return err
		}
		read(f)
		f.Close()
	}
	return nil
}

// GOOD: a non-releasing defer in a loop is someone else's problem.
func deferredCounter(k int) {
	count := func() {}
	for i := 0; i < k; i++ {
		defer count()
	}
}

// BAD, suppressed: bounded loop, justified.
func suppressed(a, b *sync.Mutex) {
	for _, mu := range []*sync.Mutex{a, b} {
		mu.Lock()
		//scoded:lint-ignore deferloop exactly two locks by construction; both intentionally held to function end
		defer mu.Unlock()
	}
}
