// Package globalrand is the fixture for the globalrand analyzer: SCODED's
// permutation tests must draw from an injected *rand.Rand, never the
// process-global generator.
package globalrand

import "math/rand"

func badIntn(n int) int {
	return rand.Intn(n) // want "math/rand.Intn uses the process-global generator"
}

func badFloat() float64 {
	return rand.Float64() // want "math/rand.Float64 uses the process-global generator"
}

func badShuffle(xs []int) {
	rand.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] }) // want "math/rand.Shuffle uses the process-global generator"
}

func badReference() func() float64 {
	return rand.NormFloat64 // want "math/rand.NormFloat64 uses the process-global generator"
}

func goodInjected(rng *rand.Rand, n int) int {
	return rng.Intn(n)
}

func goodConstructor(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}

func goodPermOnInjected(rng *rand.Rand, n int) []int {
	return rng.Perm(n)
}
