// cold.go has no //scoded:hotpath marker (the directive above is prose, not
// a marker comment — the analyzer requires the comment to be exactly the
// marker), so nothing here is flagged: the discipline is opt-in per file.
package allochot

import "fmt"

func coldSprintf(col string, bins int) string {
	return fmt.Sprintf("%s#%d", col, bins)
}

func coldConcat(a, b string) string {
	return a + "\x1f" + b
}

func coldMap() map[string]int {
	return make(map[string]int)
}
