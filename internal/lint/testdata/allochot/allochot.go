//scoded:hotpath

// Package allochot is the fixture for the allochot analyzer: files opted in
// with the //scoded:hotpath marker must not build per-call strings with
// fmt.Sprint*, concatenate strings at runtime, or allocate maps — the flat
// []int32 encodings of the detection hot path exist to avoid exactly those
// allocations.
package allochot

import "fmt"

func badSprintfKey(col string, bins int) string {
	return fmt.Sprintf("%s#%d", col, bins) // want `fmt.Sprintf allocates a string per call`
}

func badSprintKey(a, b string) string {
	return fmt.Sprint(a, b) // want `fmt.Sprint allocates a string per call`
}

func badConcatKey(parts []string) string {
	key := ""
	for _, p := range parts {
		key = key + "\x1f" + p // want `string concatenation allocates in a hotpath file`
	}
	return key
}

func badMapRemap(codes []int) []int {
	remap := make(map[int]int) // want `map allocation in a hotpath file`
	out := make([]int, len(codes))
	next := 0
	for i, c := range codes {
		d, ok := remap[c]
		if !ok {
			d = next
			next++
			remap[c] = d
		}
		out[i] = d
	}
	return out
}

func badMapLiteral() map[string]int {
	return map[string]int{"a": 1} // want `map literal allocates in a hotpath file`
}

func goodConstantConcat() string {
	// Constant-folded at compile time; no runtime allocation.
	return "prefix" + ":" + "suffix"
}

func goodFlatRemap(codes []int, k int) []int {
	remap := make([]int, k)
	for i := range remap {
		remap[i] = -1
	}
	out := make([]int, len(codes))
	next := 0
	for i, c := range codes {
		if remap[c] < 0 {
			remap[c] = next
			next++
		}
		out[i] = remap[c]
	}
	return out
}

func goodErrorPath(n int) error {
	if n < 0 {
		return fmt.Errorf("allochot: negative count %d", n)
	}
	return nil
}

func goodJustifiedMap() map[string][]int {
	//scoded:lint-ignore allochot one entry per memoized artifact, not per row
	return make(map[string][]int)
}
