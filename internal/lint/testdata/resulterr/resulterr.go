// Package resulterr is the fixture for the resulterr analyzer: since PR 1,
// detect.CheckAll records per-constraint failures on Result.Err instead of
// aborting, so readers of Violated / Test must consult Err first.
package resulterr

import (
	"scoded/internal/detect"
	"scoded/internal/relation"
	"scoded/internal/sc"
)

func badDiscardErr(d *relation.Relation, a sc.Approximate) detect.Result {
	r, _ := detect.Check(d, a, detect.Options{}) // want "error result of detect.Check discarded"
	return r
}

func badDiscardBatchErr(d *relation.Relation, as []sc.Approximate) []detect.Result {
	rs, _ := detect.CheckAll(d, as, detect.BatchOptions{}) // want "error result of detect.CheckAll discarded"
	return rs
}

func badDropEverything(d *relation.Relation, as []sc.Approximate) {
	detect.CheckAll(d, as, detect.BatchOptions{}) // want "results of detect.CheckAll discarded entirely"
}

func badReadWithoutErr(d *relation.Relation, as []sc.Approximate) int {
	rs, err := detect.CheckAll(d, as, detect.BatchOptions{}) // want "without consulting Result.Err"
	if err != nil {
		return 0
	}
	violations := 0
	for _, r := range rs {
		if r.Violated {
			violations++
		}
	}
	return violations
}

func goodErrConsulted(d *relation.Relation, as []sc.Approximate) int {
	rs, err := detect.CheckAll(d, as, detect.BatchOptions{})
	if err != nil {
		return 0
	}
	violations := 0
	for _, r := range rs {
		if r.Err != nil {
			continue
		}
		if r.Violated {
			violations++
		}
	}
	return violations
}

func goodForwardOnly(d *relation.Relation, as []sc.Approximate) ([]detect.Result, error) {
	return detect.CheckAll(d, as, detect.BatchOptions{})
}

func goodSingleCheck(d *relation.Relation, a sc.Approximate) (bool, error) {
	r, err := detect.Check(d, a, detect.Options{})
	if err != nil {
		return false, err
	}
	return r.Violated, nil
}
