// Fixture for the errflow analyzer: errors from durability-critical calls
// (fsync, rename, close-after-write) must be consulted on every path.
package errflow

import "os"

func read(f *os.File) {}

// BAD: the fsync error vanishes — the write may never have hit the disk.
func discardSync(f *os.File) {
	f.Sync() // want "error from f.Sync \\(fsync\\) is discarded"
}

// BAD: a blank assignment is the same discard, spelled louder.
func blankSync(f *os.File) {
	_ = f.Sync() // want "error from f.Sync \\(fsync\\) is discarded via _"
}

// BAD: os.Rename is the atomic-swap step; ignoring it corrupts the swap.
func discardRename(a, b string) {
	os.Rename(a, b) // want "error from os.Rename is discarded"
}

// GOOD: propagating the error is a check.
func propagateRename(a, b string) error {
	return os.Rename(a, b)
}

// BAD: checked on the retry path only; the fall-through path drops it.
func somePathOnly(f *os.File, retry bool) error {
	err := f.Sync() // want "not checked on every path before err goes out of scope"
	if retry {
		return err
	}
	return nil
}

// GOOD: checked immediately on every path.
func checkedSync(f *os.File) error {
	if err := f.Sync(); err != nil {
		return err
	}
	return nil
}

// BAD: the first error is overwritten before anyone looked at it.
func overwritten(f *os.File) error {
	err := f.Sync() // first assignment, never read
	err = f.Sync()  // want "err still holds the unchecked error from f.Sync \\(fsync\\)"
	if err != nil {
		return err
	}
	return nil
}

// BAD: `return nil` with a named error result silently drops the fact.
func namedResultDropped(f *os.File) (err error) {
	err = f.Sync() // want "not checked on every path before err goes out of scope"
	return nil
}

// GOOD: a naked return propagates the named result — that is a check.
func namedResultNaked(f *os.File) (err error) {
	err = f.Sync()
	return
}

// GOOD: Close on a writable file checked through the deferred
// fold-into-named-return idiom; the closure's read counts at exit.
func writeThrough(path string, data []byte) (err error) {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer func() {
		if cerr := f.Close(); err == nil {
			err = cerr
		}
	}()
	if _, err = f.Write(data); err != nil {
		return err
	}
	err = f.Sync()
	return err
}

// BAD: a bare Close on a file opened for writing drops the write-back
// error; GOOD on the second close — `_ =` is an accepted explicit
// discard for Close (best-effort on error paths), unlike Sync.
func closeWritable(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if _, err := f.Write(nil); err != nil {
		f.Close() // want "error from f.Close on a writable file is discarded"
		return err
	}
	_ = f.Close()
	return nil
}

// GOOD: a read-only file's Close carries no data-loss signal.
func closeReadOnly(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	read(f)
	f.Close()
	return nil
}

// BAD, suppressed: the reason is recorded with the bend.
func suppressedSync(f *os.File) {
	//scoded:lint-ignore errflow scratch file on a tmpfs; durability is explicitly not wanted here
	f.Sync()
}
