// Package floatcmp is the fixture for the floatcmp analyzer: every line
// with a `// want` comment must produce exactly that diagnostic, and every
// line without one must stay silent.
package floatcmp

import "math"

const alpha = 0.05

func badEquality(p float64) bool {
	return p == 0 // want "float operands compared with =="
}

func badInequality(q float32) bool {
	return q != 1 // want "float operands compared with !="
}

func badAgainstConst(p float64) bool {
	return p == alpha // want "float operands compared with =="
}

func badNaNIdiom(p float64) bool {
	return p != p // want "float operands compared with !="
}

func goodTolerance(p float64) bool {
	return math.Abs(p-alpha) < 1e-12
}

func goodOrderedGuard(sumSquares float64) bool {
	return sumSquares <= 0
}

func goodNaN(p float64) bool {
	return math.IsNaN(p)
}

func goodConstConst() bool {
	return alpha == 0.05 // compile-time constants compare exactly
}

func goodIntCompare(df int) bool {
	return df == 0
}

func goodJustified(p float64) bool {
	//scoded:lint-ignore floatcmp -1 is an exact sentinel assigned, never computed
	return p == -1
}
