package lint

import (
	"go/ast"
	"go/token"
)

// DeferLoopAnalyzer guards the resource lifecycle of iteration (DESIGN.md
// §13): a defer inside a loop does not run at the end of the iteration — it
// runs when the whole function returns. A Store.Scan-style loop that defers
// each segment file's Close pins every segment open at once, turning an
// O(1)-resident streaming pass into O(segments) descriptors; a deferred
// Unlock in a loop holds the first iteration's lock across all later ones.
//
// Only defers of releasing calls are flagged — Close, Unlock, RUnlock,
// whether deferred directly or wrapped in a function literal. A defer
// inside a function literal that is itself called per iteration is the
// correct fix and is not flagged.
var DeferLoopAnalyzer = &Analyzer{
	Name: "deferloop",
	Doc:  "defer of a releasing call (Close/Unlock) inside a loop delays the release to function exit",
	Run:  runDeferLoop,
}

var releasingNames = map[string]bool{
	"Close":   true,
	"Unlock":  true,
	"RUnlock": true,
}

func runDeferLoop(pass *Pass) {
	reported := map[token.Pos]bool{}
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			var body *ast.BlockStmt
			switch n := n.(type) {
			case *ast.ForStmt:
				body = n.Body
			case *ast.RangeStmt:
				body = n.Body
			default:
				return true
			}
			checkLoopBody(pass, body, reported)
			return true
		})
	}
}

// checkLoopBody flags releasing defers in a loop body, skipping function
// literals: their defers fire when the literal returns, not at the
// enclosing function's exit.
func checkLoopBody(pass *Pass, body *ast.BlockStmt, reported map[token.Pos]bool) {
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		ds, ok := n.(*ast.DeferStmt)
		if !ok {
			return true
		}
		name, ok := releasingCall(ds.Call)
		if !ok || reported[ds.Pos()] {
			return true
		}
		reported[ds.Pos()] = true
		pass.Reportf(ds.Pos(), "defer %s inside a loop releases nothing until the function returns; every iteration pins another resource — release at the end of the iteration (or wrap the body in a function)", name)
		return true
	})
}

// releasingCall reports whether a deferred call releases a resource: a
// direct Close/Unlock/RUnlock method call, or a function literal whose body
// performs one.
func releasingCall(call *ast.CallExpr) (string, bool) {
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok && releasingNames[sel.Sel.Name] && len(call.Args) == 0 {
		if id, ok := sel.X.(*ast.Ident); ok {
			return id.Name + "." + sel.Sel.Name + "()", true
		}
		return sel.Sel.Name + "()", true
	}
	if lit, ok := call.Fun.(*ast.FuncLit); ok {
		found := ""
		ast.Inspect(lit.Body, func(n ast.Node) bool {
			if found != "" {
				return false
			}
			if inner, ok := n.(*ast.CallExpr); ok {
				if sel, ok := inner.Fun.(*ast.SelectorExpr); ok && releasingNames[sel.Sel.Name] {
					found = "func() { ... " + sel.Sel.Name + "() }"
				}
			}
			return true
		})
		if found != "" {
			return found, true
		}
	}
	return "", false
}
