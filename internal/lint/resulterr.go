package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// ResultErrAnalyzer guards the contract PR 1 introduced on detect.Result:
// CheckAll no longer aborts on a failing constraint but records the failure
// on Result.Err, leaving every other field zero. A caller that reads
// Violated or Test.P without consulting Err turns "this test errored" into
// "p = 0, reject" — a silent false discovery. The analyzer enforces two
// rules outside the detect package itself:
//
//  1. the error return of detect.Check / detect.CheckAll must not be
//     discarded (blank-assigned or dropped entirely);
//  2. a function that reads result fields (Violated, Test, Strata, Leaves)
//     after calling detect.CheckAll must also read Result.Err somewhere.
//
// The per-function view is deliberately conservative: a function that only
// forwards the []Result without looking inside is exempt — the reader that
// eventually consumes the fields is the one that must check Err.
var ResultErrAnalyzer = &Analyzer{
	Name: "resulterr",
	Doc:  "callers of detect.Check/CheckAll must consult errors before reading p-values or rejections",
	Run:  runResultErr,
}

// resultFields are the detect.Result fields that are meaningless when Err
// is set.
var resultFields = map[string]bool{
	"Violated": true,
	"Test":     true,
	"Strata":   true,
	"Leaves":   true,
}

func runResultErr(pass *Pass) {
	if strings.HasSuffix(pass.Pkg.ImportPath, "internal/detect") {
		// The detect package builds Results; the contract binds its callers.
		return
	}
	for _, f := range pass.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkResultErrFunc(pass, fd.Body)
		}
	}
}

// checkResultErrFunc applies both rules within one function body (nested
// closures included: a closure consulting Err counts for its enclosing
// function, matching how handler helpers are written).
func checkResultErrFunc(pass *Pass, body *ast.BlockStmt) {
	var checkAllCalls []*ast.CallExpr
	errConsulted := false
	fieldRead := false

	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if len(n.Rhs) != 1 {
				return true
			}
			call, ok := n.Rhs[0].(*ast.CallExpr)
			if !ok {
				return true
			}
			name, isDetect := detectCallName(pass, call)
			if !isDetect || len(n.Lhs) != 2 {
				return true
			}
			if isBlankIdent(n.Lhs[1]) {
				pass.Reportf(call.Pos(), "error result of detect.%s discarded; an unchecked failure reads as a zero p-value", name)
			}
		case *ast.ExprStmt:
			if call, ok := n.X.(*ast.CallExpr); ok {
				if name, isDetect := detectCallName(pass, call); isDetect {
					pass.Reportf(call.Pos(), "results of detect.%s discarded entirely; check the error and Result.Err", name)
				}
			}
		case *ast.CallExpr:
			if name, isDetect := detectCallName(pass, n); isDetect && name == "CheckAll" {
				checkAllCalls = append(checkAllCalls, n)
			}
		case *ast.SelectorExpr:
			if !isDetectResult(pass.TypeOf(n.X)) {
				return true
			}
			switch {
			case n.Sel.Name == "Err":
				errConsulted = true
			case resultFields[n.Sel.Name]:
				fieldRead = true
			}
		}
		return true
	})

	if fieldRead && !errConsulted {
		for _, call := range checkAllCalls {
			pass.Reportf(call.Pos(), "detect.CheckAll results are read without consulting Result.Err; an errored constraint carries a zero p-value and a false Violated")
		}
	}
}

// detectCallName reports whether a call targets detect.Check or
// detect.CheckAll, returning the function name.
func detectCallName(pass *Pass, call *ast.CallExpr) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	fn, ok := pass.ObjectOf(sel.Sel).(*types.Func)
	if !ok || fn.Pkg() == nil {
		return "", false
	}
	if !strings.HasSuffix(fn.Pkg().Path(), "internal/detect") {
		return "", false
	}
	if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
		return "", false
	}
	if fn.Name() != "Check" && fn.Name() != "CheckAll" {
		return "", false
	}
	return fn.Name(), true
}

// isDetectResult reports whether t is detect.Result (possibly behind a
// pointer).
func isDetectResult(t types.Type) bool {
	if t == nil {
		return false
	}
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Result" && obj.Pkg() != nil &&
		strings.HasSuffix(obj.Pkg().Path(), "internal/detect")
}

// isBlankIdent reports whether an expression is the blank identifier.
func isBlankIdent(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "_"
}
