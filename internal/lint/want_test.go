package lint

import (
	"fmt"
	"go/ast"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"testing"
)

// The fixture harness: each analyzer's testdata package carries
// `// want "regexp"` comments on the lines expected to produce a
// diagnostic. runWantTest replays the analyzer over the fixture, applies
// the same suppression filtering as the driver, and diffs actual against
// expected — so any drift in an analyzer's positions or messages fails its
// test.

var (
	moduleOnce sync.Once
	moduleVal  *Module
	moduleErr  error
)

// sharedModule loads (once) the surrounding module for every fixture test.
func sharedModule(t *testing.T) *Module {
	t.Helper()
	moduleOnce.Do(func() {
		moduleVal, moduleErr = LoadModule(".")
	})
	if moduleErr != nil {
		t.Fatalf("loading module: %v", moduleErr)
	}
	return moduleVal
}

// wantComment is one expectation parsed from a fixture.
type wantComment struct {
	file    string
	line    int
	pattern *regexp.Regexp
	matched bool
}

// runWantTest checks one analyzer against its fixture directory.
func runWantTest(t *testing.T, analyzer *Analyzer, fixture string) {
	t.Helper()
	mod := sharedModule(t)
	pkg, err := mod.CheckDir(filepath.Join("testdata", fixture))
	if err != nil {
		t.Fatalf("loading fixture %s: %v", fixture, err)
	}
	for _, e := range pkg.TypeErrors {
		t.Errorf("fixture %s does not type-check: %v", fixture, e)
	}
	if t.Failed() {
		t.FailNow()
	}

	diags := analyzePackage(mod, pkg, []*Analyzer{analyzer})
	ignores := &ignoreSet{}
	collectIgnores(mod.Fset, pkg.Files, ignores)
	var kept []Diagnostic
	for _, d := range diags {
		if !ignores.suppressed(d) {
			kept = append(kept, d)
		}
	}
	sortDiagnostics(kept)

	wants, err := parseWants(mod, pkg)
	if err != nil {
		t.Fatalf("parsing want comments: %v", err)
	}

	for _, d := range kept {
		if !consumeWant(wants, d) {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.pattern)
		}
	}
}

// consumeWant marks the first unmatched want on the diagnostic's line whose
// pattern matches the message.
func consumeWant(wants []*wantComment, d Diagnostic) bool {
	for _, w := range wants {
		if w.matched || w.file != d.Pos.Filename || w.line != d.Pos.Line {
			continue
		}
		if w.pattern.MatchString(d.Message) {
			w.matched = true
			return true
		}
	}
	return false
}

// parseWants extracts `// want "rx" ["rx" ...]` comments from a package.
func parseWants(mod *Module, pkg *Package) ([]*wantComment, error) {
	var wants []*wantComment
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				if !strings.HasPrefix(text, "want ") {
					continue
				}
				pos := mod.Fset.Position(c.Pos())
				rest := strings.TrimSpace(strings.TrimPrefix(text, "want "))
				for rest != "" {
					quoted, err := strconv.QuotedPrefix(rest)
					if err != nil {
						return nil, fmt.Errorf("%s:%d: malformed want comment %q", pos.Filename, pos.Line, c.Text)
					}
					lit, err := strconv.Unquote(quoted)
					if err != nil {
						return nil, fmt.Errorf("%s:%d: %v", pos.Filename, pos.Line, err)
					}
					rx, err := regexp.Compile(lit)
					if err != nil {
						return nil, fmt.Errorf("%s:%d: bad want regexp: %v", pos.Filename, pos.Line, err)
					}
					wants = append(wants, &wantComment{file: pos.Filename, line: pos.Line, pattern: rx})
					rest = strings.TrimSpace(rest[len(quoted):])
				}
			}
		}
	}
	return wants, nil
}

// countFuncs is a sanity helper ensuring a fixture actually parsed
// declarations (guards against an empty-fixture false pass).
func countFuncs(pkg *Package) int {
	n := 0
	for _, f := range pkg.Files {
		for _, d := range f.Decls {
			if _, ok := d.(*ast.FuncDecl); ok {
				n++
			}
		}
	}
	return n
}
