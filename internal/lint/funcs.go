package lint

import "go/ast"

// funcBody is one analyzable function: a declared function or a function
// literal. The flow-sensitive analyzers build one CFG per funcBody; literals
// are never inlined into their enclosing function (cfg.Inspect skips them),
// so every body is visited exactly once.
type funcBody struct {
	// Name labels diagnostics: the declared name, or "function literal".
	Name string
	// Type carries the signature (for named results and parameters).
	Type *ast.FuncType
	// Body is the statement list the CFG is built from.
	Body *ast.BlockStmt
}

// forEachFuncBody invokes fn for every function body in the package —
// declared functions first, then every function literal in source order.
func forEachFuncBody(pkg *Package, fn func(fb funcBody)) {
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn(funcBody{Name: fd.Name.Name, Type: fd.Type, Body: fd.Body})
		}
		ast.Inspect(f, func(n ast.Node) bool {
			if lit, ok := n.(*ast.FuncLit); ok {
				fn(funcBody{Name: "function literal", Type: lit.Type, Body: lit.Body})
			}
			return true
		})
	}
}
