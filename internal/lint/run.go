package lint

import (
	"encoding/json"
	"fmt"
	"io"
	"path/filepath"
	"strings"
)

// Config selects what Run analyzes and how it reports.
type Config struct {
	// Dir anchors pattern resolution and the module lookup; empty means the
	// current directory.
	Dir string
	// Patterns are package patterns: a directory like ./internal/stats, or
	// a recursive pattern like ./... . Empty means ./... .
	Patterns []string
	// Analyzers restricts the run to the named analyzers; empty means all.
	Analyzers []string
}

// Result is the outcome of one lint run.
type Result struct {
	// Diagnostics are the surviving (unsuppressed) findings in source
	// order, with file paths relative to Dir where possible.
	Diagnostics []Diagnostic
	// TypeErrors are go/types failures that prevented full analysis; they
	// indicate the tree does not compile and make the run fail.
	TypeErrors []string
	// Packages is the number of packages analyzed.
	Packages int
}

// Run loads the module around cfg.Dir, analyzes every package matching the
// patterns, and returns the surviving diagnostics. The error reports driver
// problems (unparseable sources, unknown analyzers); findings are data, not
// errors.
func Run(cfg Config) (*Result, error) {
	dir := cfg.Dir
	if dir == "" {
		dir = "."
	}
	analyzers, err := selectAnalyzers(cfg.Analyzers)
	if err != nil {
		return nil, err
	}
	mod, err := LoadModule(dir)
	if err != nil {
		return nil, err
	}
	pkgs, err := matchPackages(mod, dir, cfg.Patterns)
	if err != nil {
		return nil, err
	}

	res := &Result{Packages: len(pkgs)}

	// A type error anywhere in the module poisons analysis everywhere: a
	// broken dependency leaves importers partially checked, and analyzers
	// silently find nothing in packages whose type info is missing. Report
	// every package's errors — not just the matched ones — so the run fails
	// loudly instead of exiting clean on a tree that does not compile.
	for _, pkg := range mod.Packages() {
		for _, e := range pkg.TypeErrors {
			res.TypeErrors = append(res.TypeErrors, pkg.ImportPath+": "+e.Error())
		}
	}

	var diags []Diagnostic
	ignores := &ignoreSet{}
	for _, pkg := range pkgs {
		collectIgnores(mod.Fset, pkg.Files, ignores)
		diags = append(diags, analyzePackage(mod, pkg, analyzers)...)
	}

	// Full runs also police the suppression comments themselves; partial
	// runs (a subset of analyzers) cannot tell a stale directive from one
	// aimed at an analyzer that simply did not run.
	fullRun := len(analyzers) == len(Analyzers())
	var kept []Diagnostic
	for _, d := range diags {
		if !ignores.suppressed(d) {
			kept = append(kept, d)
		}
	}
	if fullRun {
		kept = append(kept, ignores.malformed...)
		// Fixture trees under testdata/ exist to demonstrate directives;
		// ones that happen not to fire in a given run are documentation,
		// not staleness, so the unused sweep skips them.
		for _, d := range ignores.unused() {
			if !inTestdata(d.Pos.Filename) {
				kept = append(kept, d)
			}
		}
	}
	for i := range kept {
		kept[i].Pos.Filename = relativize(dir, kept[i].Pos.Filename)
	}
	sortDiagnostics(kept)
	res.Diagnostics = kept
	return res, nil
}

// analyzePackage runs the chosen analyzers over one package.
func analyzePackage(mod *Module, pkg *Package, analyzers []*Analyzer) []Diagnostic {
	var diags []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{Analyzer: a, Pkg: pkg, Fset: mod.Fset, diags: &diags}
		a.Run(pass)
	}
	return diags
}

// selectAnalyzers resolves analyzer names, defaulting to the full set.
func selectAnalyzers(names []string) ([]*Analyzer, error) {
	if len(names) == 0 {
		return Analyzers(), nil
	}
	var out []*Analyzer
	for _, n := range names {
		a, ok := AnalyzerByName(n)
		if !ok {
			return nil, fmt.Errorf("lint: unknown analyzer %q", n)
		}
		out = append(out, a)
	}
	return out, nil
}

// matchPackages filters the module's packages by the directory patterns.
func matchPackages(mod *Module, dir string, patterns []string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	base, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	seen := make(map[string]bool)
	var out []*Package
	for _, pat := range patterns {
		recursive := false
		p := pat
		if p == "all" {
			p = "./..."
		}
		if strings.HasSuffix(p, "/...") {
			recursive = true
			p = strings.TrimSuffix(p, "/...")
		} else if p == "..." {
			recursive = true
			p = "."
		}
		target := p
		if !filepath.IsAbs(target) {
			target = filepath.Join(base, target)
		}
		target = filepath.Clean(target)
		matched := false
		for _, pkg := range mod.Packages() {
			ok := pkg.Dir == target
			if recursive && !ok {
				ok = strings.HasPrefix(pkg.Dir, target+string(filepath.Separator)) || pkg.Dir == target
			}
			if ok && !seen[pkg.ImportPath] {
				seen[pkg.ImportPath] = true
				out = append(out, pkg)
			}
			matched = matched || ok
		}
		if !matched && !recursive {
			// An explicitly named directory the module walk skipped (e.g. an
			// analyzer fixture under testdata/) still loads on request.
			if pkg, err := mod.CheckDir(target); err == nil {
				if !seen[pkg.ImportPath] {
					seen[pkg.ImportPath] = true
					out = append(out, pkg)
				}
				matched = true
			}
		}
		if !matched {
			return nil, fmt.Errorf("lint: pattern %q matched no packages", pat)
		}
	}
	return out, nil
}

// inTestdata reports whether filename has a "testdata" path element.
func inTestdata(filename string) bool {
	for _, part := range strings.Split(filepath.ToSlash(filename), "/") {
		if part == "testdata" {
			return true
		}
	}
	return false
}

// relativize makes a diagnostic path relative to the invocation directory
// when that yields a shorter, rooted-in-the-repo path.
func relativize(dir, filename string) string {
	base, err := filepath.Abs(dir)
	if err != nil {
		return filename
	}
	rel, err := filepath.Rel(base, filename)
	if err != nil || strings.HasPrefix(rel, "..") {
		return filename
	}
	return rel
}

// WriteText renders diagnostics one per line in the vet style.
func WriteText(w io.Writer, res *Result) {
	for _, e := range res.TypeErrors {
		fmt.Fprintf(w, "typecheck: %s\n", e)
	}
	for _, d := range res.Diagnostics {
		fmt.Fprintln(w, d.String())
	}
}

// jsonDiagnostic is the -json wire form of one finding.
type jsonDiagnostic struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

// WriteJSON renders the result as a single JSON document.
func WriteJSON(w io.Writer, res *Result) error {
	out := struct {
		Packages    int              `json:"packages"`
		TypeErrors  []string         `json:"type_errors,omitempty"`
		Diagnostics []jsonDiagnostic `json:"diagnostics"`
	}{Packages: res.Packages, TypeErrors: res.TypeErrors, Diagnostics: []jsonDiagnostic{}}
	for _, d := range res.Diagnostics {
		out.Diagnostics = append(out.Diagnostics, jsonDiagnostic{
			File: d.Pos.Filename, Line: d.Pos.Line, Col: d.Pos.Column,
			Analyzer: d.Analyzer, Message: d.Message,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}
