package repair

import (
	"math"
	"math/rand"
	"testing"

	"scoded/internal/detect"
	"scoded/internal/relation"
	"scoded/internal/sc"
)

// figure2 is the paper's example with the inserted error records.
func figure2() *relation.Relation {
	return relation.MustNew(
		relation.NewCategoricalColumn("Model", []string{
			"BMW X1", "BMW X1", "BMW X1", "BMW X1",
			"Toyota Prius", "Toyota Prius", "Toyota Prius", "Toyota Prius",
			"BMW X1", "BMW X1", "BMW X1", "BMW X1",
			"Toyota Prius", "Toyota Prius", "Toyota Prius", "Toyota Prius",
		}),
		relation.NewCategoricalColumn("Color", []string{
			"White", "Black", "White", "Black",
			"White", "White", "White", "Black",
			"White", "White", "White", "Black",
			"Black", "Black", "Black", "Black",
		}),
	)
}

func TestCategoricalRepairReducesG(t *testing.T) {
	d := figure2()
	c := sc.MustParse("Model _||_ Color")
	res, err := TopKCells(d, c, 3, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Corrections) == 0 {
		t.Fatal("no corrections proposed")
	}
	if res.FinalStat >= res.InitialStat {
		t.Errorf("ISC repair should reduce G: %v -> %v", res.InitialStat, res.FinalStat)
	}
	for _, cor := range res.Corrections {
		if cor.Column != "Model" && cor.Column != "Color" {
			t.Errorf("correction touches foreign column %q", cor.Column)
		}
		if cor.Old == cor.New {
			t.Errorf("no-op correction: %+v", cor)
		}
		if cor.Gain <= 0 {
			t.Errorf("non-positive gain: %+v", cor)
		}
	}
}

func TestCategoricalRepairDSCRestoresDependence(t *testing.T) {
	// A near-FD relation with a few wrong labels: the DSC repair should
	// rewrite the minority labels back to the majority, raising G.
	zips := make([]string, 60)
	cities := make([]string, 60)
	for i := range zips {
		if i < 30 {
			zips[i], cities[i] = "z1", "A"
		} else {
			zips[i], cities[i] = "z2", "B"
		}
	}
	cities[5], cities[35] = "B", "A" // two swap typos
	d := relation.MustNew(
		relation.NewCategoricalColumn("Zip", zips),
		relation.NewCategoricalColumn("City", cities),
	)
	res, err := TopKCells(d, sc.MustParse("Zip ~||~ City"), 2, Options{Columns: []string{"City"}})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Corrections) != 2 {
		t.Fatalf("corrections = %+v", res.Corrections)
	}
	if res.FinalStat <= res.InitialStat {
		t.Errorf("DSC repair should raise G: %v -> %v", res.InitialStat, res.FinalStat)
	}
	fixed := map[int]string{5: "A", 35: "B"}
	for _, cor := range res.Corrections {
		want, ok := fixed[cor.Row]
		if !ok {
			t.Errorf("repair touched clean row %d", cor.Row)
			continue
		}
		if cor.New != want {
			t.Errorf("row %d corrected to %q, want %q", cor.Row, cor.New, want)
		}
		if cor.Column != "City" {
			t.Errorf("repair rewrote %q despite Columns restriction", cor.Column)
		}
	}

	// Applying the corrections makes the FD hold again and the constraint
	// satisfied strongly.
	repaired, err := Apply(d, res.Corrections)
	if err != nil {
		t.Fatal(err)
	}
	cr, err := detect.Check(repaired, sc.Approximate{SC: sc.MustParse("Zip ~||~ City"), Alpha: 0.3}, detect.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if cr.Violated {
		t.Errorf("repaired relation should satisfy the DSC (p=%v)", cr.Test.P)
	}
}

func TestNumericRepairRestoresDependence(t *testing.T) {
	// Strong dependence with 20 mean-imputed y values: the DSC repair
	// should target the imputed rows and raise nc - nd.
	rng := rand.New(rand.NewSource(3))
	n := 150
	x := make([]float64, n)
	y := make([]float64, n)
	for i := range x {
		x[i] = rng.NormFloat64()
		y[i] = 2*x[i] + 0.1*rng.NormFloat64()
	}
	for i := 0; i < 20; i++ {
		y[i] = 0
	}
	d := relation.MustNew(
		relation.NewNumericColumn("X", x),
		relation.NewNumericColumn("Y", y),
	)
	res, err := TopKCells(d, sc.MustParse("X ~||~ Y"), 20, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Corrections) == 0 {
		t.Fatal("no corrections proposed")
	}
	if res.FinalStat <= res.InitialStat {
		t.Errorf("repair should raise nc-nd: %v -> %v", res.InitialStat, res.FinalStat)
	}
	hits := 0
	for _, cor := range res.Corrections {
		if cor.Column != "Y" {
			t.Errorf("numeric repair must rewrite Y, got %q", cor.Column)
		}
		if cor.Row < 20 {
			hits++
		}
	}
	if hits < 14 {
		t.Errorf("only %d/%d corrections target imputed rows", hits, len(res.Corrections))
	}
}

func TestNumericRepairISCBreaksDependence(t *testing.T) {
	// A spurious perfect dependence: ISC repair should push |nc-nd| down.
	n := 40
	x := make([]float64, n)
	y := make([]float64, n)
	for i := range x {
		x[i] = float64(i)
		y[i] = float64(i)
	}
	d := relation.MustNew(
		relation.NewNumericColumn("X", x),
		relation.NewNumericColumn("Y", y),
	)
	res, err := TopKCells(d, sc.MustParse("X _||_ Y"), 10, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.FinalStat) >= math.Abs(res.InitialStat) {
		t.Errorf("ISC repair should shrink |nc-nd|: %v -> %v", res.InitialStat, res.FinalStat)
	}
}

func TestRepairValidation(t *testing.T) {
	d := figure2()
	if _, err := TopKCells(d, sc.MustParse("Model _||_ Color"), 0, Options{}); err == nil {
		t.Error("want error for k=0")
	}
	if _, err := TopKCells(d, sc.MustParse("A,B _||_ C"), 2, Options{}); err == nil {
		t.Error("want error for set-valued SC")
	}
	if _, err := TopKCells(d, sc.MustParse("Model _||_ Missing"), 2, Options{}); err == nil {
		t.Error("want error for missing column")
	}
	if _, err := TopKCells(d, sc.SC{X: []string{"A"}, Y: []string{"A"}}, 1, Options{}); err == nil {
		t.Error("want error for invalid SC")
	}
	// Excluding every rewritable column must error.
	if _, err := TopKCells(d, sc.MustParse("Model _||_ Color"), 2, Options{Columns: []string{"Nope"}}); err == nil {
		t.Error("want error when Columns excludes both ends")
	}
}

func TestRepairStopsWhenNoImprovement(t *testing.T) {
	// Exactly independent table: no correction can improve the ISC.
	var xs, ys []string
	for _, x := range []string{"a", "b"} {
		for _, y := range []string{"p", "q"} {
			for c := 0; c < 10; c++ {
				xs = append(xs, x)
				ys = append(ys, y)
			}
		}
	}
	d := relation.MustNew(
		relation.NewCategoricalColumn("X", xs),
		relation.NewCategoricalColumn("Y", ys),
	)
	res, err := TopKCells(d, sc.MustParse("X _||_ Y"), 5, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Corrections) != 0 {
		t.Errorf("independent table should need no repair, got %+v", res.Corrections)
	}
}

func TestApplyValidation(t *testing.T) {
	d := figure2()
	if _, err := Apply(d, []Correction{{Row: 99, Column: "Model", New: "X"}}); err == nil {
		t.Error("want error for out-of-range row")
	}
	if _, err := Apply(d, []Correction{{Row: 0, Column: "Nope", New: "X"}}); err == nil {
		t.Error("want error for missing column")
	}
	// Numeric apply parses the new value.
	nd := relation.MustNew(relation.NewNumericColumn("V", []float64{1, 2}))
	if _, err := Apply(nd, []Correction{{Row: 0, Column: "V", New: "banana"}}); err == nil {
		t.Error("want error for unparsable numeric value")
	}
	out, err := Apply(nd, []Correction{{Row: 0, Column: "V", New: "7.5"}})
	if err != nil {
		t.Fatal(err)
	}
	if out.MustColumn("V").Value(0) != 7.5 {
		t.Errorf("apply did not write value: %v", out.MustColumn("V").Value(0))
	}
	if nd.MustColumn("V").Value(0) != 1 {
		t.Error("Apply must not mutate its input")
	}
}

func TestConditionalRepair(t *testing.T) {
	// Per-stratum FD-ish structure with one typo per stratum.
	zs := make([]string, 40)
	xs := make([]string, 40)
	ys := make([]string, 40)
	for i := range zs {
		if i < 20 {
			zs[i], xs[i], ys[i] = "s1", "a", "p"
		} else {
			zs[i], xs[i], ys[i] = "s2", "b", "q"
		}
	}
	// Within each stratum make X binary so a dependence exists to restore.
	for i := 0; i < 40; i += 2 {
		if i < 20 {
			xs[i], ys[i] = "a2", "p2"
		} else {
			xs[i], ys[i] = "b2", "q2"
		}
	}
	ys[3] = "p2" // typo: (a, p2) breaks the within-stratum pairing
	d := relation.MustNew(
		relation.NewCategoricalColumn("Z", zs),
		relation.NewCategoricalColumn("X", xs),
		relation.NewCategoricalColumn("Y", ys),
	)
	res, err := TopKCells(d, sc.MustParse("X ~||~ Y | Z"), 1, Options{Columns: []string{"Y"}})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Corrections) != 1 {
		t.Fatalf("corrections = %+v", res.Corrections)
	}
	if res.Corrections[0].Row != 3 || res.Corrections[0].New != "p" {
		t.Errorf("expected row 3 corrected to p, got %+v", res.Corrections[0])
	}
}
