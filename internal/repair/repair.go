// Package repair implements the paper's Section 8 future-work extension:
// instead of only labelling whole records as dirty, search for the top-k
// *cell value corrections* that contribute the most to satisfying an SC.
//
// A correction rewrites a single cell (row, column) to a new value. For a
// dependence SC the corrections push the test statistic up (restoring the
// asserted dependence); for an independence SC they push it towards zero.
// Categorical (G-statistic) constraints use exact O(1) deltas of moving a
// record between contingency cells, applied greedily; numeric (tau)
// constraints use a batch heuristic that re-aligns each corrected value to
// the rank structure the constraint demands.
package repair

import (
	"fmt"
	"math"
	"sort"

	"scoded/internal/detect"
	"scoded/internal/relation"
	"scoded/internal/sc"
	"scoded/internal/stats"
)

// Correction is one proposed cell rewrite.
type Correction struct {
	// Row is the record index in the input relation.
	Row int
	// Column is the rewritten column.
	Column string
	// Old and New are the cell values in string form.
	Old, New string
	// Gain is the statistic improvement attributed to this correction at
	// the time it was selected (G delta for categorical constraints,
	// contribution delta for numeric ones).
	Gain float64
}

// Options configures the repair search.
type Options struct {
	// Columns restricts which of the constraint's X/Y columns may be
	// rewritten; empty means both.
	Columns []string
	// Bins is the quantile bin count for numeric columns on the G path;
	// defaults to 4.
	Bins int
	// MinStratumSize skips conditioning strata smaller than this;
	// defaults to 5.
	MinStratumSize int
}

func (o Options) withDefaults() Options {
	if o.Bins <= 1 {
		o.Bins = 4
	}
	if o.MinStratumSize <= 0 {
		o.MinStratumSize = 5
	}
	return o
}

func (o Options) allows(col string) bool {
	if len(o.Columns) == 0 {
		return true
	}
	for _, c := range o.Columns {
		if c == col {
			return true
		}
	}
	return false
}

// Result is the outcome of a repair search.
type Result struct {
	// Corrections are the proposed rewrites in selection order.
	Corrections []Correction
	// InitialStat and FinalStat are the dependence statistic before and
	// after applying every correction (G for categorical constraints,
	// nc - nd for numeric ones).
	InitialStat, FinalStat float64
}

// TopKCells proposes the k cell corrections that move the constraint's
// statistic furthest in the satisfying direction. Only single-variable
// constraints are supported; decompose set constraints first.
func TopKCells(d *relation.Relation, c sc.SC, k int, opts Options) (Result, error) {
	if err := c.Validate(); err != nil {
		return Result{}, err
	}
	if !c.IsSingle() {
		return Result{}, fmt.Errorf("repair: set-valued constraint %s; decompose first", c)
	}
	for _, col := range c.Columns() {
		if !d.HasColumn(col) {
			return Result{}, fmt.Errorf("repair: dataset lacks column %q required by %s", col, c)
		}
	}
	if k <= 0 {
		return Result{}, fmt.Errorf("repair: k=%d must be positive", k)
	}
	opts = opts.withDefaults()

	x := d.MustColumn(c.X[0])
	y := d.MustColumn(c.Y[0])
	if x.Kind == relation.Numeric && y.Kind == relation.Numeric {
		return tauRepair(d, c, k, opts)
	}
	return gRepair(d, c, k, opts)
}

// Apply returns a copy of the relation with the corrections written in.
func Apply(d *relation.Relation, corrections []Correction) (*relation.Relation, error) {
	out := d.Clone()
	for _, cor := range corrections {
		col, err := out.Column(cor.Column)
		if err != nil {
			return nil, err
		}
		if cor.Row < 0 || cor.Row >= out.NumRows() {
			return nil, fmt.Errorf("repair: correction row %d out of range", cor.Row)
		}
		if col.Kind == relation.Categorical {
			col.SetString(cor.Row, cor.New)
			continue
		}
		v, err := parseFloat(cor.New)
		if err != nil {
			return nil, fmt.Errorf("repair: correction for numeric column %q: %w", cor.Column, err)
		}
		col.SetValue(cor.Row, v)
	}
	return out, nil
}

func parseFloat(s string) (float64, error) {
	var v float64
	_, err := fmt.Sscanf(s, "%g", &v)
	return v, err
}

// strataFor mirrors the drill-down stratification.
func strataFor(d *relation.Relation, c sc.SC, opts Options) [][]int {
	if c.IsMarginal() {
		rows := make([]int, d.NumRows())
		for i := range rows {
			rows[i] = i
		}
		return [][]int{rows}
	}
	groups := d.GroupBy(c.Z)
	keys := relation.SortedGroupKeys(groups)
	var out [][]int
	for _, k := range keys {
		if len(groups[k]) >= opts.MinStratumSize {
			out = append(out, groups[k])
		}
	}
	return out
}

// ---------------------------------------------------------------------------
// Categorical path: greedy single-cell moves on the contingency table.

type gState struct {
	counts   [][]float64
	rowMarg  []float64
	colMarg  []float64
	n        float64
	cellRows [][][]int
	xLevels  []string // level name per X code
	yLevels  []string // level name per Y code
}

func gRepair(d *relation.Relation, c sc.SC, k int, opts Options) (Result, error) {
	xName, yName := c.X[0], c.Y[0]
	// Only categorical cells can be rewritten on this path (a numeric
	// column in a mixed pair is binned for the table but never rewritten),
	// further restricted by Options.Columns.
	xCat := d.MustColumn(xName).Kind == relation.Categorical && opts.allows(xName)
	yCat := d.MustColumn(yName).Kind == relation.Categorical && opts.allows(yName)
	if !xCat && !yCat {
		return Result{}, fmt.Errorf("repair: no rewritable categorical column among %q, %q", xName, yName)
	}
	var states []*gState
	for _, rows := range strataFor(d, c, opts) {
		st, err := newGState(d, c, rows)
		if err != nil {
			return Result{}, err
		}
		states = append(states, st)
	}
	if len(states) == 0 {
		return Result{}, fmt.Errorf("repair: no testable strata")
	}

	res := Result{InitialStat: sumStates(states)}
	for round := 0; round < k; round++ {
		best, ok := bestMove(states, c.Dependence, opts, xCat, yCat)
		if !ok {
			break
		}
		cor := applyMove(states[best.state], best, xName, yName)
		res.Corrections = append(res.Corrections, cor)
	}
	res.FinalStat = sumStates(states)
	return res, nil
}

// newGState builds the contingency state of one stratum. Only categorical
// columns are eligible for correction on this path, so numeric columns in a
// mixed pair are binned for the table but never rewritten.
func newGState(d *relation.Relation, c sc.SC, rows []int) (*gState, error) {
	xCodes, xLevels := codesAndLevels(d, c.X[0], rows)
	yCodes, yLevels := codesAndLevels(d, c.Y[0], rows)
	st := &gState{xLevels: xLevels, yLevels: yLevels}
	kx, ky := len(xLevels), len(yLevels)
	st.counts = make([][]float64, kx)
	st.cellRows = make([][][]int, kx)
	for i := 0; i < kx; i++ {
		st.counts[i] = make([]float64, ky)
		st.cellRows[i] = make([][]int, ky)
	}
	st.rowMarg = make([]float64, kx)
	st.colMarg = make([]float64, ky)
	for idx, r := range rows {
		i, j := xCodes[idx], yCodes[idx]
		st.counts[i][j]++
		st.rowMarg[i]++
		st.colMarg[j]++
		st.n++
		st.cellRows[i][j] = append(st.cellRows[i][j], r)
	}
	return st, nil
}

// codesAndLevels returns dense codes and the level display names of a
// column over a row subset; numeric columns use quantile-bin labels.
func codesAndLevels(d *relation.Relation, name string, rows []int) ([]int, []string) {
	col := d.MustColumn(name)
	if col.Kind == relation.Categorical {
		remap := make(map[int]int)
		var levels []string
		out := make([]int, len(rows))
		for i, r := range rows {
			code := col.Code(r)
			dense, ok := remap[code]
			if !ok {
				dense = len(remap)
				remap[code] = dense
				levels = append(levels, col.StringAt(r))
			}
			out[i] = dense
		}
		return out, levels
	}
	vals := make([]float64, len(rows))
	for i, r := range rows {
		vals[i] = col.Value(r)
	}
	codes, nBins := detect.DiscretizeQuantile(vals, 4)
	levels := make([]string, nBins)
	for b := range levels {
		levels[b] = fmt.Sprintf("bin%d", b)
	}
	return codes, levels
}

func (st *gState) g() float64 {
	var s float64
	for i := range st.counts {
		for _, o := range st.counts[i] {
			s += xlnx(o)
		}
	}
	for _, r := range st.rowMarg {
		s -= xlnx(r)
	}
	for _, c := range st.colMarg {
		s -= xlnx(c)
	}
	s += xlnx(st.n)
	if g := 2 * s; g > 0 {
		return g
	}
	return 0
}

func xlnx(x float64) float64 {
	if x <= 0 {
		return 0
	}
	return x * math.Log(x)
}

func sumStates(states []*gState) float64 {
	var s float64
	for _, st := range states {
		s += st.g()
	}
	return s
}

// move is one candidate correction: record from cell (i, j) changes its X
// level to i2 (axis 0) or its Y level to j2 (axis 1).
type move struct {
	state  int
	i, j   int
	axis   int // 0: rewrite X, 1: rewrite Y
	target int
	delta  float64 // G change of the move
}

// moveDeltaX is the exact G change of moving one record from (i, j) to
// (i2, j): cells O_ij, O_i2j and row marginals R_i, R_i2 change; column
// marginals and N do not.
func (st *gState) moveDeltaX(i, j, i2 int) float64 {
	o, o2 := st.counts[i][j], st.counts[i2][j]
	r, r2 := st.rowMarg[i], st.rowMarg[i2]
	return 2 * ((xlnx(o-1) - xlnx(o)) + (xlnx(o2+1) - xlnx(o2)) -
		(xlnx(r-1) - xlnx(r)) - (xlnx(r2+1) - xlnx(r2)))
}

// moveDeltaY is the symmetric Y-rewrite delta.
func (st *gState) moveDeltaY(i, j, j2 int) float64 {
	o, o2 := st.counts[i][j], st.counts[i][j2]
	c, c2 := st.colMarg[j], st.colMarg[j2]
	return 2 * ((xlnx(o-1) - xlnx(o)) + (xlnx(o2+1) - xlnx(o2)) -
		(xlnx(c-1) - xlnx(c)) - (xlnx(c2+1) - xlnx(c2)))
}

// bestMove scans all candidate single-cell rewrites and returns the one
// with the largest improvement in the constraint's direction. ok is false
// when no move improves.
func bestMove(states []*gState, dependence bool, opts Options, xCat, yCat bool) (move, bool) {
	var best move
	found := false
	consider := func(m move) {
		impr := -m.delta // ISC: G should fall
		if dependence {
			impr = m.delta
		}
		if impr <= 1e-12 {
			return
		}
		bestImpr := -best.delta
		if dependence {
			bestImpr = best.delta
		}
		if !found || impr > bestImpr {
			best = m
			found = true
		}
	}
	for si, st := range states {
		for i := range st.counts {
			for j, o := range st.counts[i] {
				if o <= 0 {
					continue
				}
				if xCat {
					for i2 := range st.counts {
						if i2 != i {
							consider(move{state: si, i: i, j: j, axis: 0, target: i2,
								delta: st.moveDeltaX(i, j, i2)})
						}
					}
				}
				if yCat {
					for j2 := range st.counts[i] {
						if j2 != j {
							consider(move{state: si, i: i, j: j, axis: 1, target: j2,
								delta: st.moveDeltaY(i, j, j2)})
						}
					}
				}
			}
		}
	}
	return best, found
}

// applyMove mutates the state and emits the correction.
func applyMove(st *gState, m move, xName, yName string) Correction {
	rows := st.cellRows[m.i][m.j]
	row := rows[0]
	st.cellRows[m.i][m.j] = rows[1:]
	st.counts[m.i][m.j]--
	var cor Correction
	if m.axis == 0 {
		st.counts[m.target][m.j]++
		st.rowMarg[m.i]--
		st.rowMarg[m.target]++
		st.cellRows[m.target][m.j] = append(st.cellRows[m.target][m.j], row)
		cor = Correction{Row: row, Column: xName, Old: st.xLevels[m.i], New: st.xLevels[m.target]}
	} else {
		st.counts[m.i][m.target]++
		st.colMarg[m.j]--
		st.colMarg[m.target]++
		st.cellRows[m.i][m.target] = append(st.cellRows[m.i][m.target], row)
		cor = Correction{Row: row, Column: yName, Old: st.yLevels[m.j], New: st.yLevels[m.target]}
	}
	cor.Gain = math.Abs(m.delta)
	return cor
}

// ---------------------------------------------------------------------------
// Numeric path: batch rank re-alignment.

// tauRepair proposes corrections to the Y column of a numeric pair. For a
// dependence SC each candidate rewrites y_i to the Y value whose rank
// matches x_i's rank (maximal concordance while preserving the Y marginal);
// for an independence SC to the Y median (zeroing the record's pair
// contribution). Records are scored by the contribution change of their
// candidate, computed exactly, and the top-k are returned as a batch.
func tauRepair(d *relation.Relation, c sc.SC, k int, opts Options) (Result, error) {
	yName := c.Y[0]
	if !opts.allows(yName) {
		return Result{}, fmt.Errorf("repair: numeric path rewrites the Y column %q, which Options.Columns excludes", yName)
	}
	xc := d.MustColumn(c.X[0])
	yc := d.MustColumn(yName)

	type cand struct {
		row  int
		old  float64
		new  float64
		gain float64
	}
	var cands []cand
	var initial, final float64

	for _, rows := range strataFor(d, c, opts) {
		x := make([]float64, len(rows))
		y := make([]float64, len(rows))
		for i, r := range rows {
			x[i] = xc.Value(r)
			y[i] = yc.Value(r)
		}
		kr := stats.KendallNaive(x, y)
		s := float64(kr.Concordant - kr.Discordant)
		initial += s

		sortedY := append([]float64(nil), y...)
		sort.Float64s(sortedY)
		xRanks := stats.Ranks(x)

		for i := range rows {
			var target float64
			if c.Dependence {
				// Rank matching: the Y value at x's rank position.
				pos := int(xRanks[i]) - 1
				if pos < 0 {
					pos = 0
				}
				if pos >= len(sortedY) {
					pos = len(sortedY) - 1
				}
				target = sortedY[pos]
			} else {
				target = sortedY[len(sortedY)/2]
			}
			//scoded:lint-ignore floatcmp the repair target is a copied data value; equality means no-op edit
			if target == y[i] {
				continue
			}
			delta := contributionDelta(x, y, i, target)
			impr := delta // DSC: s should grow
			if !c.Dependence {
				impr = math.Abs(s) - math.Abs(s+delta)
			} else if s < 0 {
				impr = -delta
			}
			if impr > 1e-12 {
				cands = append(cands, cand{row: rows[i], old: y[i], new: target, gain: impr})
			}
		}
	}

	sort.SliceStable(cands, func(a, b int) bool { return cands[a].gain > cands[b].gain })
	if k > len(cands) {
		k = len(cands)
	}
	res := Result{InitialStat: initial}
	for _, cd := range cands[:k] {
		res.Corrections = append(res.Corrections, Correction{
			Row: cd.row, Column: yName,
			Old: fmt.Sprintf("%g", cd.old), New: fmt.Sprintf("%g", cd.new),
			Gain: cd.gain,
		})
	}
	// Evaluate the batch exactly on the repaired data.
	repaired, err := Apply(d, res.Corrections)
	if err != nil {
		return Result{}, err
	}
	ryc := repaired.MustColumn(yName)
	for _, rows := range strataFor(repaired, c, opts) {
		x := make([]float64, len(rows))
		y := make([]float64, len(rows))
		for i, r := range rows {
			x[i] = xc.Value(r)
			y[i] = ryc.Value(r)
		}
		kr := stats.KendallNaive(x, y)
		final += float64(kr.Concordant - kr.Discordant)
	}
	res.FinalStat = final
	return res, nil
}

// contributionDelta is the exact change in nc - nd from rewriting y[i] to
// target, all other records fixed: O(n).
func contributionDelta(x, y []float64, i int, target float64) float64 {
	var before, after float64
	for j := range y {
		if j == i {
			continue
		}
		before += pairWeight(x[i], y[i], x[j], y[j])
		after += pairWeight(x[i], target, x[j], y[j])
	}
	return after - before
}

func pairWeight(x1, y1, x2, y2 float64) float64 {
	dx, dy := x1-x2, y1-y2
	switch {
	//scoded:lint-ignore floatcmp Kendall ties are defined by exact value equality
	case dx == 0 || dy == 0:
		return 0
	case (dx > 0) == (dy > 0):
		return 1
	default:
		return -1
	}
}
