// Package streambench defines the reproducible streaming-ingest workload
// behind the incremental-statistics performance trajectory:
// cmd/scoded-bench -json -suite stream and the benchmarks in this package
// both run exactly this workload, so the committed BENCH_stream.json
// numbers and `go test -bench` agree on what is being measured (the same
// contract internal/detectbench and internal/drillbench provide).
//
// The workload is a 100k-row sliding window under sustained ingest: every
// record is one insert plus one eviction plus a verdict read — the steady
// state of a windowed monitor behind POST /v1/monitors/{id}/records. Two
// kernels are compared per type:
//
//   - incremental: the production stream.NumericMonitor (Fenwick
//     concordance index, amortized O(√(w log w)) per record) and
//     stream.CategoricalMonitor (O(1) cell deltas);
//   - naive: a from-scratch batch recompute of the same statistic over
//     the window after every record (stats.Kendall / stats.GTest), the
//     cost a monitor without incremental kernels would pay.
//
// The acceptance headline is records/sec incremental vs naive on the
// numeric window (target ≥ 10×).
package streambench

import (
	"fmt"
	"math/rand"
	"testing"

	"scoded/internal/stats"
	"scoded/internal/stream"
)

// workload dimensions; see NewWorkload.
const (
	workloadWindow  = 100000
	workloadRecords = 200000 // pregenerated stream, cycled as needed
	workloadLevels  = 8      // categories per categorical column
	naiveAlpha      = 0.05
)

// Workload is one reproducible streaming input: pregenerated numeric and
// categorical record streams, plus the window they slide over.
type Workload struct {
	Window int
	// X, Y are the numeric stream: rank-correlated pairs with a planted
	// dependent block, the drillbench recipe, so the monitor tracks a
	// genuinely non-null statistic while the window turns over.
	X, Y []float64
	// A, B are the categorical stream; AC, BC the same records as codes
	// for the naive table recompute.
	A, B   []string
	AC, BC []int
}

// NewWorkload builds the canonical streaming workload for a seed.
func NewWorkload(seed int64) *Workload {
	return NewWorkloadSize(seed, workloadWindow, workloadRecords)
}

// NewWorkloadSize is NewWorkload with explicit dimensions, for tests and
// regression benchmarks that want the same shape at other window sizes.
func NewWorkloadSize(seed int64, window, records int) *Workload {
	rng := rand.New(rand.NewSource(seed))
	w := &Workload{
		Window: window,
		X:      make([]float64, records),
		Y:      make([]float64, records),
		A:      make([]string, records),
		B:      make([]string, records),
		AC:     make([]int, records),
		BC:     make([]int, records),
	}
	levels := make([]string, workloadLevels)
	for i := range levels {
		levels[i] = fmt.Sprintf("v%d", i)
	}
	for i := 0; i < records; i++ {
		w.X[i] = rng.NormFloat64()
		w.Y[i] = rng.NormFloat64()
		if i%10 == 0 { // planted dependence: rank-aligned with X
			w.Y[i] = w.X[i] + 0.1*rng.NormFloat64()
		}
		a, b := rng.Intn(workloadLevels), rng.Intn(workloadLevels)
		if rng.Float64() < 0.25 {
			b = a
		}
		w.AC[i], w.BC[i] = a, b
		w.A[i], w.B[i] = levels[a], levels[b]
	}
	return w
}

// PrefilledNumeric returns a numeric monitor with a full window, so every
// subsequent insert is the steady-state insert+evict pair.
func (w *Workload) PrefilledNumeric() *stream.NumericMonitor {
	m, err := stream.NewNumericMonitor(naiveAlpha, false, w.Window)
	if err != nil {
		panic(err)
	}
	for i := 0; i < w.Window; i++ {
		m.Insert(w.X[i], w.Y[i])
	}
	return m
}

// PrefilledCategorical is the categorical twin of PrefilledNumeric.
func (w *Workload) PrefilledCategorical() *stream.CategoricalMonitor {
	m, err := stream.NewCategoricalMonitor(naiveAlpha, false, w.Window)
	if err != nil {
		panic(err)
	}
	for i := 0; i < w.Window; i++ {
		m.Insert(w.A[i], w.B[i])
	}
	return m
}

// naiveNumericWindow is the no-incremental-kernel baseline: a ring of
// observations recomputed from scratch with stats.Kendall after every
// record — exactly what a monitor would cost if each record re-ran batch
// detection on its window.
type naiveNumericWindow struct {
	xs, ys []float64
	next   int
	full   bool
}

func newNaiveNumericWindow(window int) *naiveNumericWindow {
	return &naiveNumericWindow{xs: make([]float64, 0, window), ys: make([]float64, 0, window)}
}

// insert applies one record (insert + implicit evict once full) and
// recomputes the full Kendall test over the window.
func (n *naiveNumericWindow) insert(x, y float64) stats.KendallResult {
	if !n.full && len(n.xs) < cap(n.xs) {
		n.xs = append(n.xs, x)
		n.ys = append(n.ys, y)
		if len(n.xs) == cap(n.xs) {
			n.full = true
		}
	} else {
		n.xs[n.next], n.ys[n.next] = x, y
		n.next++
		if n.next == len(n.xs) {
			n.next = 0
		}
	}
	if len(n.xs) < 2 {
		return stats.KendallResult{N: len(n.xs)}
	}
	res, err := stats.Kendall(n.xs, n.ys)
	if err != nil {
		panic(err)
	}
	return res
}

// naiveCategoricalWindow recomputes the windowed G test from codes after
// every record.
type naiveCategoricalWindow struct {
	a, b []int32
	next int
	full bool
}

func newNaiveCategoricalWindow(window int) *naiveCategoricalWindow {
	return &naiveCategoricalWindow{a: make([]int32, 0, window), b: make([]int32, 0, window)}
}

func (n *naiveCategoricalWindow) insert(a, b int) stats.TestResult {
	if !n.full && len(n.a) < cap(n.a) {
		n.a = append(n.a, int32(a))
		n.b = append(n.b, int32(b))
		if len(n.a) == cap(n.a) {
			n.full = true
		}
	} else {
		n.a[n.next], n.b[n.next] = int32(a), int32(b)
		n.next++
		if n.next == len(n.a) {
			n.next = 0
		}
	}
	res, err := stats.GTest(stats.TableFromCodes(n.a, n.b, workloadLevels, workloadLevels))
	if err != nil {
		panic(err)
	}
	return res
}

// BenchResult is one benchmark measurement in BENCH_stream.json.
type BenchResult struct {
	// Name identifies the variant: {numeric,categorical}_{incremental,naive};
	// each op is one record through a full sliding window (insert + evict +
	// verdict for incremental, insert + evict + batch recompute for naive).
	Name string `json:"name"`
	// Iters is the iteration count testing.Benchmark settled on.
	Iters       int   `json:"iters"`
	NsPerOp     int64 `json:"ns_per_op"`
	BytesPerOp  int64 `json:"bytes_per_op"`
	AllocsPerOp int64 `json:"allocs_per_op"`
	// RecordsPerSec is the sustained single-stream ingest rate this variant
	// supports: 1e9 / NsPerOp.
	RecordsPerSec float64 `json:"records_per_sec"`
}

// Report is the machine-readable content of BENCH_stream.json.
type Report struct {
	Seed int64 `json:"seed"`
	// Window is the sliding-window size every variant slides over.
	Window  int           `json:"window"`
	Results []BenchResult `json:"results"`
	// SpeedupNumeric is naive ns/op divided by incremental ns/op on the
	// numeric window — the acceptance headline (target ≥ 10).
	SpeedupNumeric float64 `json:"speedup_numeric"`
	// SpeedupCategorical is the same ratio for the categorical window.
	SpeedupCategorical float64 `json:"speedup_categorical"`
}

// Bench measures the four variants with testing.Benchmark and derives the
// speedups. The workers parameter is accepted for CLI symmetry with the
// other suites; the streaming kernels are single-writer by design, so it
// is unused.
func Bench(seed int64, workers int) Report {
	_ = workers
	w := NewWorkload(seed)
	rep := Report{Seed: seed, Window: w.Window}

	variants := []struct {
		name string
		run  func(b *testing.B)
	}{
		{"numeric_incremental", func(b *testing.B) {
			m := w.PrefilledNumeric()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				j := w.Window + i%(len(w.X)-w.Window)
				m.Insert(w.X[j], w.Y[j])
				if v := m.Verdict(); v.N == 0 {
					b.Fatal("empty window")
				}
			}
		}},
		{"numeric_naive", func(b *testing.B) {
			n := newNaiveNumericWindow(w.Window)
			n.xs = append(n.xs, w.X[:w.Window]...)
			n.ys = append(n.ys, w.Y[:w.Window]...)
			n.full = true
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				j := w.Window + i%(len(w.X)-w.Window)
				res := n.insert(w.X[j], w.Y[j])
				if res.N == 0 {
					b.Fatal("empty window")
				}
			}
		}},
		{"categorical_incremental", func(b *testing.B) {
			m := w.PrefilledCategorical()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				j := w.Window + i%(len(w.A)-w.Window)
				m.Insert(w.A[j], w.B[j])
				if v := m.Verdict(); v.N == 0 {
					b.Fatal("empty window")
				}
			}
		}},
		{"categorical_naive", func(b *testing.B) {
			n := newNaiveCategoricalWindow(w.Window)
			for j := 0; j < w.Window; j++ {
				n.a = append(n.a, int32(w.AC[j]))
				n.b = append(n.b, int32(w.BC[j]))
			}
			n.full = true
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				j := w.Window + i%(len(w.A)-w.Window)
				res := n.insert(w.AC[j], w.BC[j])
				if res.N == 0 {
					b.Fatal("empty window")
				}
			}
		}},
	}
	for _, v := range variants {
		r := testing.Benchmark(v.run)
		ns := r.NsPerOp()
		if ns <= 0 {
			ns = 1
		}
		rep.Results = append(rep.Results, BenchResult{
			Name:          v.name,
			Iters:         r.N,
			NsPerOp:       ns,
			BytesPerOp:    r.AllocedBytesPerOp(),
			AllocsPerOp:   r.AllocsPerOp(),
			RecordsPerSec: 1e9 / float64(ns),
		})
	}
	rep.SpeedupNumeric = ratio(rep.Results, "numeric_naive", "numeric_incremental")
	rep.SpeedupCategorical = ratio(rep.Results, "categorical_naive", "categorical_incremental")
	return rep
}

func ratio(rs []BenchResult, slow, fast string) float64 {
	var s, f float64
	for _, r := range rs {
		switch r.Name {
		case slow:
			s = float64(r.NsPerOp)
		case fast:
			f = float64(r.NsPerOp)
		}
	}
	if f <= 0 {
		return 0
	}
	return s / f
}
