package streambench

import (
	"fmt"
	"math"
	"testing"

	"scoded/internal/stream"
)

// TestNaiveAndIncrementalAgree pins the benchmark's two numeric variants
// to the same statistic on a small window — the baseline being raced must
// compute the same answer, or the speedup is meaningless.
func TestNaiveAndIncrementalAgree(t *testing.T) {
	const window, records = 256, 800
	w := NewWorkloadSize(3, window, records)
	m, err := stream.NewNumericMonitor(naiveAlpha, false, window)
	if err != nil {
		t.Fatal(err)
	}
	n := newNaiveNumericWindow(window)
	for i := 0; i < records; i++ {
		m.Insert(w.X[i], w.Y[i])
		res := n.insert(w.X[i], w.Y[i])
		if i < window-1 {
			continue
		}
		if got, want := m.PairSum(), float64(res.Concordant-res.Discordant); got != want {
			t.Fatalf("record %d: incremental pair sum %v, naive %v", i, got, want)
		}
		if diff := math.Abs(m.TauB() - res.TauB); diff > 1e-12 {
			t.Fatalf("record %d: TauB differs by %g", i, diff)
		}
	}
}

// TestCategoricalNaiveAndIncrementalAgree is the categorical twin.
func TestCategoricalNaiveAndIncrementalAgree(t *testing.T) {
	const window, records = 128, 500
	w := NewWorkloadSize(4, window, records)
	m, err := stream.NewCategoricalMonitor(naiveAlpha, false, window)
	if err != nil {
		t.Fatal(err)
	}
	n := newNaiveCategoricalWindow(window)
	for i := 0; i < records; i++ {
		m.Insert(w.A[i], w.B[i])
		res := n.insert(w.AC[i], w.BC[i])
		if i < window-1 {
			continue
		}
		if diff := math.Abs(m.G() - res.Statistic); diff > 1e-9*(1+math.Abs(res.Statistic)) {
			t.Fatalf("record %d: G differs by %g (incremental %v, naive %v)",
				i, diff, m.G(), res.Statistic)
		}
	}
}

// BenchmarkNumericInsertEvict is the eviction-cost regression benchmark:
// each op is one steady-state insert+evict on a full window. Before the
// ring buffer and concordance index, this cost grew linearly with the
// window (removeAt slice shift + O(w) pair walk); now it should stay
// within a small factor across a 64x window sweep.
func BenchmarkNumericInsertEvict(b *testing.B) {
	for _, window := range []int{1024, 8192, 65536} {
		b.Run(fmt.Sprintf("window-%d", window), func(b *testing.B) {
			w := NewWorkloadSize(1, window, 2*window)
			m := w.PrefilledNumeric()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				j := window + i%window
				m.Insert(w.X[j], w.Y[j])
			}
		})
	}
}

// BenchmarkCategoricalInsertEvict is the categorical twin; the cell-delta
// path should be flat and allocation-free across window sizes.
func BenchmarkCategoricalInsertEvict(b *testing.B) {
	for _, window := range []int{1024, 8192, 65536} {
		b.Run(fmt.Sprintf("window-%d", window), func(b *testing.B) {
			w := NewWorkloadSize(1, window, 2*window)
			m := w.PrefilledCategorical()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				j := window + i%window
				m.Insert(w.A[j], w.B[j])
			}
		})
	}
}
