// Package graphoid implements the semi-graphoid axioms over conditional
// independence statements and uses them for the SCODED consistency-checking
// component (Section 3): deciding whether a set of statistical constraints
// is contradictory, e.g. {X ⊥ Y, X ⊥̸ Y}.
//
// The semi-graphoid axioms (Pearl; Geiger & Pearl) are:
//
//	Symmetry:      X ⊥ Y | Z            ⇒ Y ⊥ X | Z
//	Decomposition: X ⊥ Y∪W | Z          ⇒ X ⊥ Y | Z
//	Weak union:    X ⊥ Y∪W | Z          ⇒ X ⊥ Y | Z∪W
//	Contraction:   X ⊥ Y | Z ∧ X ⊥ W | Z∪Y ⇒ X ⊥ Y∪W | Z
//
// The package computes the closure of a set of independence SCs under these
// axioms (with a configurable size cap, since full conditional-independence
// implication has no finite axiomatization — Studeny 1990) and reports
// conflicts with the dependence SCs.
package graphoid

import (
	"fmt"
	"sort"
	"strings"

	"scoded/internal/sc"
)

// statement is a canonicalized CI statement: sorted column sets, X ≤ Y
// lexicographically (symmetry folded in).
type statement struct {
	x, y, z string // "\x1f"-joined sorted column lists
}

func (s statement) String() string {
	disp := func(v string) string { return strings.ReplaceAll(v, "\x1f", ",") }
	out := disp(s.x) + " _||_ " + disp(s.y)
	if s.z != "" {
		out += " | " + disp(s.z)
	}
	return out
}

func canon(x, y, z []string) statement {
	xs := joinSorted(x)
	ys := joinSorted(y)
	if xs > ys {
		xs, ys = ys, xs
	}
	return statement{x: xs, y: ys, z: joinSorted(z)}
}

func joinSorted(v []string) string {
	s := append([]string(nil), v...)
	sort.Strings(s)
	return strings.Join(s, "\x1f")
}

func split(v string) []string {
	if v == "" {
		return nil
	}
	return strings.Split(v, "\x1f")
}

func fromSC(c sc.SC) statement { return canon(c.X, c.Y, c.Z) }

// Options bounds the closure computation.
type Options struct {
	// MaxStatements caps the closure size; computation stops (and the
	// Closed flag reports false) once exceeded. Defaults to 20000.
	MaxStatements int
}

func (o Options) withDefaults() Options {
	if o.MaxStatements <= 0 {
		o.MaxStatements = 20000
	}
	return o
}

// Closure is the semi-graphoid closure of a set of independence statements.
type Closure struct {
	set map[statement]bool
	// Complete is false when the size cap stopped the fixpoint iteration,
	// in which case Contains may report false negatives.
	Complete bool
}

// Contains reports whether the closure contains the given ISC (up to
// symmetry and column ordering). The SC must be an independence constraint.
func (cl *Closure) Contains(c sc.SC) bool {
	if c.Dependence {
		return false
	}
	return cl.set[fromSC(c)]
}

// Size returns the number of distinct statements in the closure.
func (cl *Closure) Size() int { return len(cl.set) }

// Statements returns the closure contents as SCs, sorted by display form,
// for deterministic inspection.
func (cl *Closure) Statements() []sc.SC {
	out := make([]sc.SC, 0, len(cl.set))
	for s := range cl.set {
		out = append(out, sc.Independence(split(s.x), split(s.y), split(s.z)))
	}
	sort.Slice(out, func(i, j int) bool { return out[i].String() < out[j].String() })
	return out
}

// SemiGraphoidClosure computes the closure of the independence SCs under
// symmetry, decomposition, weak union and contraction. Dependence SCs in
// the input are rejected.
func SemiGraphoidClosure(iscs []sc.SC, opts Options) (*Closure, error) {
	opts = opts.withDefaults()
	cl := &Closure{set: make(map[statement]bool), Complete: true}
	var work []statement

	add := func(s statement) {
		if s.x == "" || s.y == "" {
			return
		}
		if !cl.set[s] {
			cl.set[s] = true
			work = append(work, s)
		}
	}

	for _, c := range iscs {
		if c.Dependence {
			return nil, fmt.Errorf("graphoid: closure input must be independence SCs, got %s", c)
		}
		if err := c.Validate(); err != nil {
			return nil, err
		}
		add(fromSC(c))
	}

	for len(work) > 0 {
		if len(cl.set) > opts.MaxStatements {
			cl.Complete = false
			break
		}
		s := work[len(work)-1]
		work = work[:len(work)-1]

		x, y, z := split(s.x), split(s.y), split(s.z)

		// Decomposition and weak union: drop or shift one element of Y
		// (and, by the symmetry folded into canon, of X).
		for _, side := range [][2][]string{{x, y}, {y, x}} {
			keep, reduce := side[0], side[1]
			if len(reduce) < 2 {
				continue
			}
			for i := range reduce {
				rest := removeAt(reduce, i)
				// Decomposition: forget reduce[i].
				add(canon(keep, rest, z))
				// Weak union: move reduce[i] into the conditioning set.
				add(canon(keep, rest, append(append([]string(nil), z...), reduce[i])))
			}
		}

		// Contraction: with s read as A ⊥ B | Z (in both orientations,
		// since symmetry is folded into the canonical form), a partner
		// A ⊥ W | Z∪B yields A ⊥ B∪W | Z.
		for _, orient := range [][2][]string{{x, y}, {y, x}} {
			a, b := orient[0], orient[1]
			zb := joinSorted(append(append([]string(nil), z...), b...))
			aKey := joinSorted(a)
			for other := range cl.set {
				if other.z != zb {
					continue
				}
				var w []string
				switch aKey {
				case other.x:
					w = split(other.y)
				case other.y:
					w = split(other.x)
				default:
					continue
				}
				if overlaps(a, w) || overlaps(b, w) {
					continue
				}
				add(canon(a, append(append([]string(nil), b...), w...), z))
			}
		}
	}
	return cl, nil
}

func removeAt(v []string, i int) []string {
	out := make([]string, 0, len(v)-1)
	out = append(out, v[:i]...)
	out = append(out, v[i+1:]...)
	return out
}

func overlaps(a, b []string) bool {
	set := make(map[string]bool, len(a))
	for _, v := range a {
		set[v] = true
	}
	for _, v := range b {
		if set[v] {
			return true
		}
	}
	return false
}

// Conflict describes a contradiction between a dependence SC and an
// independence statement derivable from the declared ISCs.
type Conflict struct {
	// DSC is the dependence constraint that is contradicted.
	DSC sc.SC
	// Because is the derived independence statement that contradicts it.
	Because sc.SC
}

// String renders the conflict for display.
func (c Conflict) String() string {
	return fmt.Sprintf("%s contradicts derived %s", c.DSC, c.Because)
}

// CheckConsistency verifies a constraint set Σ = I ∪ D: it computes the
// semi-graphoid closure of the independence SCs and reports every dependence
// SC that the closure contradicts. An empty conflict list means Σ is
// consistent as far as the semi-graphoid axioms can tell (the implication
// problem has no complete finite axiomatization, so this is sound but not
// complete).
func CheckConsistency(constraints []sc.SC, opts Options) ([]Conflict, error) {
	var iscs, dscs []sc.SC
	for _, c := range constraints {
		if err := c.Validate(); err != nil {
			return nil, err
		}
		if c.Dependence {
			dscs = append(dscs, c)
		} else {
			iscs = append(iscs, c)
		}
	}
	cl, err := SemiGraphoidClosure(iscs, opts)
	if err != nil {
		return nil, err
	}
	var conflicts []Conflict
	for _, d := range dscs {
		ind := d.Negate()
		if cl.Contains(ind) {
			conflicts = append(conflicts, Conflict{DSC: d, Because: ind})
		}
	}
	return conflicts, nil
}
