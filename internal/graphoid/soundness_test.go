package graphoid

import (
	"math/rand"
	"testing"

	"scoded/internal/bayes"
	"scoded/internal/discovery"
	"scoded/internal/sc"
)

// TestClosureSoundForDSeparation is the classical soundness property: the
// conditional independencies of any DAG (read off by d-separation) form a
// semi-graphoid, so the closure of any subset of them must contain only
// statements that are themselves d-separations of the DAG. This wires the
// graphoid engine against the Bayesian-network substrate as an oracle.
func TestClosureSoundForDSeparation(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	nodes := []string{"A", "B", "C", "D", "E"}
	for trial := 0; trial < 30; trial++ {
		g := bayes.MustNewDAG(nodes)
		// Random DAG: consider each forward pair in a random topological
		// labelling.
		perm := rng.Perm(len(nodes))
		for i := 0; i < len(nodes); i++ {
			for j := i + 1; j < len(nodes); j++ {
				if rng.Float64() < 0.4 {
					if err := g.AddEdge(nodes[perm[i]], nodes[perm[j]]); err != nil {
						t.Fatal(err)
					}
				}
			}
		}
		implied, err := discovery.ImpliedSCs(g, 2)
		if err != nil {
			t.Fatal(err)
		}
		var iscs []sc.SC
		for _, c := range implied {
			if !c.Dependence {
				iscs = append(iscs, c)
			}
		}
		if len(iscs) == 0 {
			continue
		}
		// A random subset as the declared constraints.
		var input []sc.SC
		for _, c := range iscs {
			if rng.Float64() < 0.5 {
				input = append(input, c)
			}
		}
		if len(input) == 0 {
			input = iscs[:1]
		}
		cl, err := SemiGraphoidClosure(input, Options{MaxStatements: 5000})
		if err != nil {
			t.Fatal(err)
		}
		for _, st := range cl.Statements() {
			sep, err := g.DSeparated(st.X, st.Y, st.Z)
			if err != nil {
				t.Fatal(err)
			}
			if !sep {
				t.Fatalf("trial %d: closure derived %s, which is NOT d-separated in the DAG %v (input %v)",
					trial, st, g.Edges(), input)
			}
		}
	}
}

// TestConsistencyAgainstBNTruth: declaring the DSCs of a DAG alongside its
// ISCs must never produce a conflict, because the DSC set is exactly the
// complement of the d-separation facts.
func TestConsistencyAgainstBNTruth(t *testing.T) {
	g := bayes.MustNewDAG([]string{"A", "B", "C", "D"})
	g.AddEdge("A", "B")
	g.AddEdge("B", "C")
	g.AddEdge("C", "D")
	implied, err := discovery.ImpliedSCs(g, 1)
	if err != nil {
		t.Fatal(err)
	}
	conflicts, err := CheckConsistency(implied, Options{MaxStatements: 5000})
	if err != nil {
		t.Fatal(err)
	}
	if len(conflicts) != 0 {
		t.Errorf("DAG-derived constraint set reported conflicts: %v", conflicts)
	}
}
