package graphoid

import (
	"testing"

	"scoded/internal/sc"
)

func TestClosureSymmetry(t *testing.T) {
	cl, err := SemiGraphoidClosure([]sc.SC{sc.MustParse("A _||_ B | C")}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !cl.Contains(sc.MustParse("B _||_ A | C")) {
		t.Error("symmetry not applied")
	}
	if !cl.Complete {
		t.Error("tiny closure should complete")
	}
}

func TestClosureDecomposition(t *testing.T) {
	cl, err := SemiGraphoidClosure([]sc.SC{sc.MustParse("A _||_ B,C | D")}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"A _||_ B | D", "A _||_ C | D"} {
		if !cl.Contains(sc.MustParse(want)) {
			t.Errorf("decomposition missing %s", want)
		}
	}
}

func TestClosureWeakUnion(t *testing.T) {
	cl, err := SemiGraphoidClosure([]sc.SC{sc.MustParse("A _||_ B,C | D")}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"A _||_ B | C,D", "A _||_ C | B,D"} {
		if !cl.Contains(sc.MustParse(want)) {
			t.Errorf("weak union missing %s", want)
		}
	}
}

func TestClosureContraction(t *testing.T) {
	// X ⊥ Y | Z  and  X ⊥ W | Z,Y  ⇒  X ⊥ Y,W | Z
	cl, err := SemiGraphoidClosure([]sc.SC{
		sc.MustParse("X _||_ Y | Z"),
		sc.MustParse("X _||_ W | Y,Z"),
	}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !cl.Contains(sc.MustParse("X _||_ Y,W | Z")) {
		t.Error("contraction not applied")
	}
	// And then decomposition gives X ⊥ W | Z.
	if !cl.Contains(sc.MustParse("X _||_ W | Z")) {
		t.Error("derived decomposition missing")
	}
}

func TestClosureContractionMarginal(t *testing.T) {
	// Marginal form: X ⊥ Y  and  X ⊥ W | Y  ⇒  X ⊥ Y,W.
	cl, err := SemiGraphoidClosure([]sc.SC{
		sc.MustParse("X _||_ Y"),
		sc.MustParse("X _||_ W | Y"),
	}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !cl.Contains(sc.MustParse("X _||_ Y,W")) {
		t.Error("marginal contraction not applied")
	}
	if !cl.Contains(sc.MustParse("X _||_ W")) {
		t.Error("X ⊥ W should follow by decomposition")
	}
}

func TestClosureDoesNotOverderive(t *testing.T) {
	cl, err := SemiGraphoidClosure([]sc.SC{sc.MustParse("A _||_ B")}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, notWant := range []string{"A _||_ C", "A _||_ B | C", "B _||_ C"} {
		if cl.Contains(sc.MustParse(notWant)) {
			t.Errorf("closure over-derives %s", notWant)
		}
	}
	if cl.Size() != 1 {
		t.Errorf("closure of one marginal pair statement should have size 1, got %d: %v",
			cl.Size(), cl.Statements())
	}
}

func TestClosureRejectsDSC(t *testing.T) {
	if _, err := SemiGraphoidClosure([]sc.SC{sc.MustParse("A ~||~ B")}, Options{}); err == nil {
		t.Error("want error for DSC input")
	}
	if _, err := SemiGraphoidClosure([]sc.SC{{X: []string{"A"}, Y: []string{"A"}}}, Options{}); err == nil {
		t.Error("want error for invalid SC")
	}
}

func TestClosureSizeCap(t *testing.T) {
	// Many set-valued statements explode combinatorially; the cap must
	// stop the iteration and flag incompleteness.
	in := []sc.SC{sc.MustParse("A,B,C,D _||_ E,F,G,H | I")}
	cl, err := SemiGraphoidClosure(in, Options{MaxStatements: 10})
	if err != nil {
		t.Fatal(err)
	}
	if cl.Complete {
		t.Error("capped closure should report incomplete")
	}
}

func TestCheckConsistencyDirectConflict(t *testing.T) {
	conflicts, err := CheckConsistency([]sc.SC{
		sc.MustParse("X _||_ Y"),
		sc.MustParse("X ~||~ Y"),
	}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(conflicts) != 1 {
		t.Fatalf("conflicts = %v", conflicts)
	}
	if conflicts[0].String() == "" {
		t.Error("conflict should render")
	}
}

func TestCheckConsistencyDerivedConflict(t *testing.T) {
	// The ISC A ⊥ B,C entails A ⊥ B (decomposition), contradicting the
	// declared DSC A ⊥̸ B.
	conflicts, err := CheckConsistency([]sc.SC{
		sc.MustParse("A _||_ B,C"),
		sc.MustParse("A ~||~ B"),
	}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(conflicts) != 1 {
		t.Fatalf("conflicts = %v", conflicts)
	}
	if !conflicts[0].DSC.Equivalent(sc.MustParse("A ~||~ B")) {
		t.Errorf("wrong conflicting DSC: %v", conflicts[0])
	}
}

func TestCheckConsistencyConsistentSet(t *testing.T) {
	conflicts, err := CheckConsistency([]sc.SC{
		sc.MustParse("RowID _||_ Price"),
		sc.MustParse("Model ~||~ Price"),
		sc.MustParse("Color _||_ Price | Model"),
	}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(conflicts) != 0 {
		t.Errorf("consistent set reported conflicts: %v", conflicts)
	}
}

func TestCheckConsistencyValidation(t *testing.T) {
	if _, err := CheckConsistency([]sc.SC{{X: []string{"A"}, Y: nil}}, Options{}); err == nil {
		t.Error("want error for invalid SC")
	}
}

func TestStatementsDeterministic(t *testing.T) {
	cl, err := SemiGraphoidClosure([]sc.SC{sc.MustParse("A _||_ B,C")}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	a := cl.Statements()
	b := cl.Statements()
	if len(a) != len(b) {
		t.Fatal("nondeterministic statement count")
	}
	for i := range a {
		if a[i].String() != b[i].String() {
			t.Errorf("order differs at %d: %v vs %v", i, a[i], b[i])
		}
	}
	for i := 1; i < len(a); i++ {
		if a[i-1].String() >= a[i].String() {
			t.Error("statements not sorted")
		}
	}
}
