package scoded_test

import (
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"scoded"
)

func TestPublicAPIRepair(t *testing.T) {
	// Row 2's city is a swap typo: it holds z2's city. (A typo to a unique
	// value would not weaken the mutual information at all — a unique
	// city still determines its zip.)
	rel, err := scoded.NewRelation(
		scoded.NewCategoricalColumn("Zip", []string{"z1", "z1", "z1", "z2", "z2", "z2"}),
		scoded.NewCategoricalColumn("City", []string{"A", "A", "C", "C", "C", "C"}),
	)
	if err != nil {
		t.Fatal(err)
	}
	dsc := scoded.FDToDSC(scoded.FD{LHS: []string{"Zip"}, RHS: []string{"City"}})
	res, err := scoded.RepairTopKCells(rel, dsc, 1, scoded.RepairOptions{Columns: []string{"City"}})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Corrections) != 1 || res.Corrections[0].Row != 2 || res.Corrections[0].New != "A" {
		t.Fatalf("corrections = %+v", res.Corrections)
	}
	fixed, err := scoded.ApplyCorrections(rel, res.Corrections)
	if err != nil {
		t.Fatal(err)
	}
	if fixed.MustColumn("City").StringAt(2) != "A" {
		t.Error("correction not applied")
	}
}

func TestPublicAPIMonitors(t *testing.T) {
	cm, err := scoded.NewCategoricalMonitor(0.05, false, 0)
	if err != nil {
		t.Fatal(err)
	}
	cm.Insert("a", "p")
	cm.Insert("b", "q")
	if v := cm.Verdict(); v.N != 2 {
		t.Errorf("N = %d", v.N)
	}
	nm, err := scoded.NewNumericMonitor(0.3, true, 10)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 20; i++ {
		x := rng.NormFloat64()
		nm.Insert(x, x)
	}
	if v := nm.Verdict(); v.Violated {
		t.Errorf("perfect dependence flagged as violated: %+v", v)
	}
	cond, err := scoded.NewConditionalMonitor(0.05, false, 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	cond.Insert("s", "a", "p")
	cond.Insert("s", "b", "q")
	cond.Insert("s", "a", "p")
	if v := cond.Verdict(); v.N != 3 {
		t.Errorf("conditional N = %d", v.N)
	}
}

func TestPublicAPIConstructorsAndIO(t *testing.T) {
	isc := scoded.Independence([]string{"A"}, []string{"B"}, []string{"C"})
	if isc.Dependence || isc.String() != "A _||_ B | C" {
		t.Errorf("Independence = %v", isc)
	}
	dsc := scoded.Dependence([]string{"A"}, []string{"B"}, nil)
	if !dsc.Dependence {
		t.Error("Dependence should set the flag")
	}

	path := filepath.Join(t.TempDir(), "t.csv")
	if err := os.WriteFile(path, []byte("A,B\n1,x\n2,y\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	rel, err := scoded.ReadCSVFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if rel.NumRows() != 2 || rel.MustColumn("A").Kind != scoded.Numeric {
		t.Errorf("loaded relation wrong: %d rows", rel.NumRows())
	}
}

func TestPublicAPIBatchAndExplain(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	n := 300
	x := make([]float64, n)
	y := make([]float64, n)
	z := make([]float64, n)
	for i := range x {
		x[i] = rng.NormFloat64()
		y[i] = x[i] + 0.3*rng.NormFloat64()
		z[i] = rng.NormFloat64()
	}
	rel, _ := scoded.NewRelation(
		scoded.NewNumericColumn("X", x),
		scoded.NewNumericColumn("Y", y),
		scoded.NewNumericColumn("Z", z),
	)
	results, err := scoded.CheckAll(rel, []scoded.ApproximateSC{
		{SC: scoded.MustParseSC("X _||_ Y"), Alpha: 0.05},
		{SC: scoded.MustParseSC("X _||_ Z"), Alpha: 0.05},
	}, scoded.BatchCheckOptions{FDR: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	if !results[0].Violated || results[1].Violated {
		t.Errorf("batch verdicts wrong: %v / %v", results[0].Violated, results[1].Violated)
	}

	rows, err := scoded.MultiTopK(rel, []scoded.SC{
		scoded.MustParseSC("X ~||~ Y"), scoded.MustParseSC("X ~||~ Z"),
	}, 10, scoded.DrillOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 10 {
		t.Errorf("MultiTopK rows = %d", len(rows))
	}

	findings, err := scoded.ExplainRows(rel, []int{0, 1, 2, 3}, scoded.ExplainOptions{MaxP: 1})
	if err != nil {
		t.Fatal(err)
	}
	_ = findings // random rows may or may not produce findings

	ranked, err := scoded.RankFeatures(rel, "Y", []string{"X", "Z"}, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if ranked[0].Feature != "X" || !ranked[0].Relevant {
		t.Errorf("X should be the relevant feature: %+v", ranked[0])
	}

	cnm, err := scoded.NewConditionalNumericMonitor(0.3, true, 0, 5)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		v := rng.NormFloat64()
		cnm.Insert("s", v, v)
	}
	if cnm.Verdict().Violated {
		t.Error("dependent conditional stream flagged")
	}
}

func TestPublicAPILearnBayesNet(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	n := 2000
	a := make([]string, n)
	b := make([]string, n)
	for i := 0; i < n; i++ {
		a[i] = []string{"0", "1"}[rng.Intn(2)]
		b[i] = a[i]
		if rng.Float64() < 0.1 {
			b[i] = []string{"0", "1"}[rng.Intn(2)]
		}
	}
	rel, _ := scoded.NewRelation(
		scoded.NewCategoricalColumn("A", a),
		scoded.NewCategoricalColumn("B", b),
	)
	g, err := scoded.LearnBayesNet(rel, []string{"A", "B"})
	if err != nil {
		t.Fatal(err)
	}
	if !g.HasEdge("A", "B") && !g.HasEdge("B", "A") {
		t.Errorf("dependence not learned: %v", g.Edges())
	}
}
