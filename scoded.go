// Package scoded is a from-scratch Go implementation of SCODED, the
// statistical-constraint-oriented data error detection system of Yan,
// Schulte, Zhang, Wang and Cheng (SIGMOD 2020).
//
// A statistical constraint (SC) asserts a probabilistic (in)dependence
// between column sets of a relation: the independence SC "Model _||_ Color"
// says knowing Color gives no information about Model; the dependence SC
// "Wind ~||~ Weather | Year" says Wind stays informative about Weather
// within every year. An approximate SC pairs a constraint with a false
// dependence rate α and is checked by hypothesis testing — the G-test for
// categorical pairs, Kendall's tau for numeric pairs.
//
// The package exposes the two SCODED workflows:
//
//   - violation detection (Check): does the dataset contradict the
//     constraint at significance α?
//   - error drill-down (TopK, Partition): which k records contribute most
//     to the violation, and what is the smallest record set whose removal
//     repairs it?
//
// plus the supporting components: SC discovery from correlation matrices
// and Bayesian networks (Discovery), consistency checking of constraint
// sets under the semi-graphoid axioms (CheckConsistency), and the
// SC-vs-integrity-constraint entailment translations (the ic package types
// re-exported here).
//
// Quick start:
//
//	rel, _ := scoded.ReadCSVFile("cars.csv")
//	a, _ := scoded.ParseApproximateSC("Model _||_ Color @ 0.05")
//	res, _ := scoded.Check(rel, a, scoded.CheckOptions{})
//	if res.Violated {
//	    top, _ := scoded.TopK(rel, a.SC, 5, scoded.DrillOptions{})
//	    fmt.Println("suspect rows:", top.Rows)
//	}
package scoded

import (
	"context"
	"io"

	"scoded/internal/detect"
	"scoded/internal/drilldown"
	"scoded/internal/graphoid"
	"scoded/internal/kernel"
	"scoded/internal/relation"
	"scoded/internal/sc"
)

// Relation is an in-memory table: typed columns (categorical or numeric) of
// equal length, with projection, grouping and empirical-distribution
// operations. See the methods on the aliased type.
type Relation = relation.Relation

// Column is one typed column of a Relation.
type Column = relation.Column

// ColumnKind distinguishes categorical from numeric columns.
type ColumnKind = relation.Kind

// Column kinds.
const (
	Categorical = relation.Categorical
	Numeric     = relation.Numeric
)

// NewRelation builds a relation from columns; all columns must have equal
// length and distinct names.
func NewRelation(cols ...*Column) (*Relation, error) { return relation.New(cols...) }

// NewCategoricalColumn builds a column of discrete string values.
func NewCategoricalColumn(name string, vals []string) *Column {
	return relation.NewCategoricalColumn(name, vals)
}

// NewNumericColumn builds a column of float64 values.
func NewNumericColumn(name string, vals []float64) *Column {
	return relation.NewNumericColumn(name, vals)
}

// ReadCSV loads a relation from CSV with a header row, inferring column
// types (a column parses as Numeric when every value is a float).
func ReadCSV(r io.Reader) (*Relation, error) { return relation.ReadCSV(r) }

// ReadCSVFile is ReadCSV over a file path.
func ReadCSVFile(path string) (*Relation, error) { return relation.ReadCSVFile(path) }

// SC is a statistical constraint X ⊥ Y | Z (independence) or X ⊥̸ Y | Z
// (dependence) over column sets of a relation.
type SC = sc.SC

// ApproximateSC pairs an SC with a false dependence rate α (the paper's
// Definition 4): the constraint is enforced as a hypothesis test at
// significance α.
type ApproximateSC = sc.Approximate

// ParseSC reads an SC from text, e.g. "Model _||_ Color",
// "Wind ~||~ Weather | Year". The independence operator is "_||_" (also
// "⊥"); the dependence operator is "~||~" (also "!_||_").
func ParseSC(s string) (SC, error) { return sc.Parse(s) }

// MustParseSC is ParseSC but panics on error; for static constraint tables.
func MustParseSC(s string) SC { return sc.MustParse(s) }

// ParseApproximateSC reads "constraint @ alpha", e.g.
// "Model _||_ Color @ 0.05". A missing alpha defaults to 0.05.
func ParseApproximateSC(s string) (ApproximateSC, error) { return sc.ParseApproximate(s) }

// Independence constructs an ISC X ⊥ Y | Z (pass nil for a marginal Z).
func Independence(x, y, z []string) SC { return sc.Independence(x, y, z) }

// Dependence constructs a DSC X ⊥̸ Y | Z.
func Dependence(x, y, z []string) SC { return sc.Dependence(x, y, z) }

// TestMethod selects the hypothesis-test statistic for Check.
type TestMethod = detect.Method

// Test methods. Auto picks the G-test for categorical or mixed pairs and
// Kendall's tau for numeric pairs; the Exact variants use Monte-Carlo
// permutation tests for small samples.
const (
	Auto         = detect.Auto
	GTest        = detect.G
	Kendall      = detect.Kendall
	Pearson      = detect.Pearson
	Spearman     = detect.Spearman
	ExactG       = detect.ExactG
	ExactKendall = detect.ExactKendall
)

// CheckOptions configures violation detection; the zero value uses the
// paper's defaults (Auto method, 4 quantile bins, minimum stratum size 5).
// Set Cache (NewKernelCache) to share partitions, codings and contingency
// tables across the checks and drill-downs of one dataset.
type CheckOptions = detect.Options

// KernelCache memoizes the intermediate statistics of one dataset's
// detection hot path (column codings, conditioning-set partitions,
// contingency tables, Kendall precomputations). Thread one through
// CheckOptions.Cache / DrillOptions.Cache to make repeated checks over a
// shared-attribute constraint family reuse each other's work; results are
// bit-identical with and without it. Safe for concurrent use.
type KernelCache = kernel.Cache

// NewKernelCache creates a cache bound to a dataset. The dataset must not
// be mutated afterwards; build a new cache for new data.
func NewKernelCache(d *Relation) *KernelCache { return kernel.New(d) }

// CheckResult reports a violation-detection outcome: the test statistic,
// p-value, the Algorithm 1 decision, and per-stratum details for
// conditional constraints.
type CheckResult = detect.Result

// Check runs SCODED's violation detection (Algorithm 1): it computes the
// constraint's test statistic and p-value on the dataset and decides
// whether the constraint is violated at its α. An independence SC is
// violated when p < α; a dependence SC when p >= α.
func Check(d *Relation, a ApproximateSC, opts CheckOptions) (CheckResult, error) {
	return detect.Check(d, a, opts)
}

// CheckContext is Check with cancellation: the computation observes ctx
// between strata and kernel stages and returns an error wrapping ctx.Err()
// when it is cancelled or its deadline expires. Check is equivalent to
// CheckContext with context.Background().
func CheckContext(ctx context.Context, d *Relation, a ApproximateSC, opts CheckOptions) (CheckResult, error) {
	return detect.CheckContext(ctx, d, a, opts)
}

// BatchCheckOptions configures CheckAll, adding family-wise
// Benjamini-Hochberg FDR control (FDR) and a worker-pool bound (Workers)
// to the per-constraint options.
type BatchCheckOptions = detect.BatchOptions

// CheckAll checks a family of approximate SCs against one dataset, fanning
// the per-constraint checks out over a bounded worker pool
// (BatchCheckOptions.Workers; GOMAXPROCS by default). Results come back in
// input order and match a sequential run exactly. A constraint that cannot
// be checked records the failure in its CheckResult.Err instead of
// aborting the family. With BatchCheckOptions.FDR > 0, the violation
// decisions use Benjamini-Hochberg control at that false discovery rate
// within each constraint direction, guarding against the multiple-testing
// inflation of enforcing many SCs at once.
func CheckAll(d *Relation, as []ApproximateSC, opts BatchCheckOptions) ([]CheckResult, error) {
	return detect.CheckAll(d, as, opts)
}

// CheckAllContext is CheckAll with cancellation. Cancelling ctx drains the
// family: constraints already finished keep their results, and every
// unfinished constraint records an error wrapping ctx.Err() in its
// CheckResult.Err — callers get partial results, not an aborted batch.
func CheckAllContext(ctx context.Context, d *Relation, as []ApproximateSC, opts BatchCheckOptions) ([]CheckResult, error) {
	return detect.CheckAllContext(ctx, d, as, opts)
}

// DrillStrategy selects the greedy search strategy of Section 5.2.
type DrillStrategy = drilldown.Strategy

// Drill-down strategies. BestStrategy picks the paper's recommendation per
// constraint type: K for dependence SCs, K^c for independence SCs.
const (
	BestStrategy = drilldown.Best
	KStrategy    = drilldown.K
	KcStrategy   = drilldown.Kc
)

// DrillMethod selects the drill-down statistic path.
type DrillMethod = drilldown.Method

// Drill-down methods. DrillAuto uses the tau path for numeric pairs and the
// G path otherwise; DrillGMethod forces the G path (numeric columns are
// quantile-discretized — needed for non-monotone dependencies);
// DrillTauMethod forces the tau path.
const (
	DrillAuto      = drilldown.AutoMethod
	DrillGMethod   = drilldown.GMethod
	DrillTauMethod = drilldown.TauMethod
)

// DrillOptions configures drill-down; the zero value uses BestStrategy with
// the paper's cell-contribution heuristic for categorical data.
type DrillOptions = drilldown.Options

// DrillResult reports the selected rows and the dependence statistic before
// and after their hypothetical removal.
type DrillResult = drilldown.Result

// TopK solves the top-k contribution problem (Definition 7): the k records
// contributing most to the constraint's violation. Numeric pairs use the
// Fenwick-tree implementation of Algorithm 2 (O(n log n) initialization);
// categorical pairs use the group-based G-statistic method of Section 5.3.
func TopK(d *Relation, c SC, k int, opts DrillOptions) (DrillResult, error) {
	return drilldown.TopK(d, c, k, opts)
}

// TopKContext is TopK with cancellation: the greedy search observes ctx
// once per round, so a cancelled or expired context interrupts even a
// large drill-down promptly with an error wrapping ctx.Err().
func TopKContext(ctx context.Context, d *Relation, c SC, k int, opts DrillOptions) (DrillResult, error) {
	return drilldown.TopKContext(ctx, d, c, k, opts)
}

// PatternFinding is one enriched value among a flagged row set: the
// automated version of the paper's "check whether these records follow a
// pattern" step.
type PatternFinding = drilldown.PatternFinding

// ExplainOptions configures ExplainRows.
type ExplainOptions = drilldown.ExplainOptions

// ExplainRows summarizes what flagged rows have in common: per column (and
// column pair), the values significantly over-represented among them,
// scored by hypergeometric enrichment — e.g. Figure 2's "all five records
// are Toyota Prius and Black" or Figure 7's "GPM = 0, draft year before
// 2000".
func ExplainRows(d *Relation, rows []int, opts ExplainOptions) ([]PatternFinding, error) {
	return drilldown.ExplainRows(d, rows, opts)
}

// MultiTopK drills into several constraints at once, merging the
// per-constraint rankings round-robin with deduplication — the
// multi-constraint pooling of the paper's Figure 9(b) setting.
func MultiTopK(d *Relation, cs []SC, k int, opts DrillOptions) ([]int, error) {
	return drilldown.MultiTopK(d, cs, k, opts)
}

// MultiTopKContext is MultiTopK with cancellation across the whole family:
// the per-constraint drill-downs run on the shared execution engine and a
// cancelled ctx fails the call with an error wrapping ctx.Err().
func MultiTopKContext(ctx context.Context, d *Relation, cs []SC, k int, opts DrillOptions) ([]int, error) {
	return drilldown.MultiTopKContext(ctx, d, cs, k, opts)
}

// PartitionResult reports a dataset-partition outcome.
type PartitionResult = drilldown.PartitionResult

// Partition solves the dataset-partition problem (Definition 6) greedily:
// find a small record set whose removal makes the constraint hold.
// maxRemove bounds the search (0 means up to half the dataset).
func Partition(d *Relation, a ApproximateSC, opts DrillOptions, maxRemove int) (PartitionResult, error) {
	return drilldown.Partition(d, a, opts, maxRemove)
}

// Conflict is a contradiction between a declared dependence SC and an
// independence statement derivable from the declared independence SCs.
type Conflict = graphoid.Conflict

// CheckConsistency verifies a constraint set Σ = I ∪ D with the
// semi-graphoid axioms (symmetry, decomposition, weak union, contraction):
// it returns every dependence SC contradicted by the closure of the
// independence SCs. An empty result means no contradiction is derivable.
func CheckConsistency(constraints []SC) ([]Conflict, error) {
	return graphoid.CheckConsistency(constraints, graphoid.Options{})
}
