package scoded_test

import (
	"encoding/json"
	"flag"
	"math"
	"os"
	"path/filepath"
	"testing"

	"scoded"
	"scoded/internal/datasets"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files from current output")

// goldenTolerance is the agreement required of statistics and p-values
// against the golden file. JSON round-trips float64 exactly, so any drift
// beyond rounding noise means the detection pipeline changed numerically.
const goldenTolerance = 1e-12

// hockeyGolden freezes the full detection output over the hockey example
// dataset: per-constraint statistics, BH-FDR decisions, per-stratum
// details, and the drill-down top-k row ids. Future kernel or stats
// changes that shift any number must regenerate this file deliberately
// (go test -run TestHockeyGolden -update .) and justify the diff.
type hockeyGolden struct {
	Players int             `json:"players"`
	Seed    int64           `json:"seed"`
	FDR     float64         `json:"fdr"`
	Results []goldenResult  `json:"results"`
	TopK    goldenDrilldown `json:"topk"`
}

type goldenResult struct {
	Constraint string          `json:"constraint"`
	Alpha      float64         `json:"alpha"`
	Method     string          `json:"method,omitempty"`
	Statistic  float64         `json:"statistic"`
	DF         int             `json:"df"`
	P          float64         `json:"p"`
	N          int             `json:"n"`
	Violated   bool            `json:"violated"`
	Error      string          `json:"error,omitempty"`
	Strata     []goldenStratum `json:"strata,omitempty"`
}

type goldenStratum struct {
	Key       string  `json:"key"`
	Size      int     `json:"size"`
	Statistic float64 `json:"statistic"`
	P         float64 `json:"p"`
	Skipped   bool    `json:"skipped,omitempty"`
}

type goldenDrilldown struct {
	Constraint  string  `json:"constraint"`
	K           int     `json:"k"`
	Rows        []int   `json:"rows"`
	InitialStat float64 `json:"initial_stat"`
	FinalStat   float64 `json:"final_stat"`
}

func computeHockeyGolden(t *testing.T) hockeyGolden {
	t.Helper()
	const players, seed, fdr = 600, 5, 0.1
	d := datasets.Hockey(datasets.HockeyOptions{Players: players, Seed: seed}).Rel
	cache := scoded.NewKernelCache(d)

	var family []scoded.ApproximateSC
	for _, text := range []string{
		"GPM ~||~ Games @ 0.05",
		"GPM _||_ Games @ 0.05",
		"GPM ~||~ Games | DraftYear @ 0.05",
		"GPM _||_ Games | DraftYear @ 0.05",
		"DraftYear _||_ GPM @ 0.05",
		"DraftYear _||_ Games @ 0.05",
	} {
		a, err := scoded.ParseApproximateSC(text)
		if err != nil {
			t.Fatal(err)
		}
		family = append(family, a)
	}

	results, err := scoded.CheckAll(d, family, scoded.BatchCheckOptions{
		Options: scoded.CheckOptions{Cache: cache},
		FDR:     fdr,
	})
	if err != nil {
		t.Fatal(err)
	}
	g := hockeyGolden{Players: players, Seed: seed, FDR: fdr}
	for _, r := range results {
		gr := goldenResult{
			Constraint: r.Constraint.SC.String(),
			Alpha:      r.Constraint.Alpha,
			Violated:   r.Violated,
		}
		if r.Err != nil {
			gr.Error = r.Err.Error()
		} else {
			gr.Method = r.Method.String()
			gr.Statistic = r.Test.Statistic
			gr.DF = r.Test.DF
			gr.P = r.Test.P
			gr.N = r.Test.N
			for _, st := range r.Strata {
				gr.Strata = append(gr.Strata, goldenStratum{
					Key: st.Key, Size: st.Size,
					Statistic: st.Test.Statistic, P: st.Test.P, Skipped: st.Skipped,
				})
			}
		}
		g.Results = append(g.Results, gr)
	}

	// The paper's hockey case study: the imputed zeros hide in the
	// conditional dependence, recovered by the G-method drill-down.
	drillSC := family[2].SC
	const k = 50
	top, err := scoded.TopK(d, drillSC, k, scoded.DrillOptions{
		Method: scoded.DrillGMethod,
		Cache:  cache,
	})
	if err != nil {
		t.Fatal(err)
	}
	g.TopK = goldenDrilldown{
		Constraint:  drillSC.String(),
		K:           k,
		Rows:        top.Rows,
		InitialStat: top.InitialStat,
		FinalStat:   top.FinalStat,
	}
	return g
}

func closeEnough(a, b float64) bool {
	if math.IsNaN(a) || math.IsNaN(b) {
		return math.IsNaN(a) && math.IsNaN(b)
	}
	return math.Abs(a-b) <= goldenTolerance*math.Max(1, math.Abs(b))
}

func TestHockeyGolden(t *testing.T) {
	path := filepath.Join("testdata", "hockey_golden.json")
	got := computeHockeyGolden(t)

	if *updateGolden {
		b, err := json.MarshalIndent(got, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, append(b, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s", path)
		return
	}

	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading golden file (regenerate with -update): %v", err)
	}
	var want hockeyGolden
	if err := json.Unmarshal(raw, &want); err != nil {
		t.Fatal(err)
	}

	if got.Players != want.Players || got.Seed != want.Seed || !closeEnough(got.FDR, want.FDR) {
		t.Fatalf("workload mismatch: got %d/%d/%v want %d/%d/%v",
			got.Players, got.Seed, got.FDR, want.Players, want.Seed, want.FDR)
	}
	if len(got.Results) != len(want.Results) {
		t.Fatalf("%d results, want %d", len(got.Results), len(want.Results))
	}
	for i, w := range want.Results {
		r := got.Results[i]
		if r.Constraint != w.Constraint || r.Method != w.Method || r.Error != w.Error {
			t.Errorf("result %d identity: %+v vs %+v", i, r, w)
			continue
		}
		if r.Violated != w.Violated {
			t.Errorf("%s: violated %v, want %v", w.Constraint, r.Violated, w.Violated)
		}
		if !closeEnough(r.Statistic, w.Statistic) || !closeEnough(r.P, w.P) ||
			r.DF != w.DF || r.N != w.N || !closeEnough(r.Alpha, w.Alpha) {
			t.Errorf("%s: test drifted: got stat=%v p=%v df=%d n=%d, want stat=%v p=%v df=%d n=%d",
				w.Constraint, r.Statistic, r.P, r.DF, r.N, w.Statistic, w.P, w.DF, w.N)
		}
		if len(r.Strata) != len(w.Strata) {
			t.Errorf("%s: %d strata, want %d", w.Constraint, len(r.Strata), len(w.Strata))
			continue
		}
		for j, ws := range w.Strata {
			rs := r.Strata[j]
			if rs.Key != ws.Key || rs.Size != ws.Size || rs.Skipped != ws.Skipped ||
				!closeEnough(rs.Statistic, ws.Statistic) || !closeEnough(rs.P, ws.P) {
				t.Errorf("%s stratum %q: %+v vs %+v", w.Constraint, ws.Key, rs, ws)
			}
		}
	}

	if got.TopK.Constraint != want.TopK.Constraint || got.TopK.K != want.TopK.K {
		t.Fatalf("topk workload mismatch: %+v vs %+v", got.TopK, want.TopK)
	}
	if !closeEnough(got.TopK.InitialStat, want.TopK.InitialStat) ||
		!closeEnough(got.TopK.FinalStat, want.TopK.FinalStat) {
		t.Errorf("topk stats drifted: %+v vs %+v", got.TopK, want.TopK)
	}
	if len(got.TopK.Rows) != len(want.TopK.Rows) {
		t.Fatalf("topk returned %d rows, want %d", len(got.TopK.Rows), len(want.TopK.Rows))
	}
	for i, w := range want.TopK.Rows {
		if got.TopK.Rows[i] != w {
			t.Errorf("topk row %d: %d, want %d", i, got.TopK.Rows[i], w)
		}
	}
}
