// Hockey reproduces the paper's Section 6.2 model-construction case study.
// A data scientist building a Games-played regression model discovers — via
// Bayesian-network profiling — a counter-intuitive dependence between Games
// and the pre-NHL plus-minus statistic (GPM) given DraftYear, contradicting
// the sports-analytics literature. SCODED's drill-down reveals the cause:
// the data provider imputed GPM = 0 for pre-2000 draftees who reached the
// NHL.
package main

import (
	"fmt"
	"log"
	"strconv"

	"scoded"
	"scoded/internal/datasets"
)

func main() {
	// Stand-in for the NHL draftee table (see DESIGN.md §2 for the
	// substitution argument): DraftYear, GPM, Games with the documented
	// imputation flaw planted.
	data := datasets.Hockey(datasets.HockeyOptions{Seed: 42})
	rel := data.Rel
	fmt.Printf("loaded %d draftee records\n\n", rel.NumRows())

	// Domain knowledge says the junior-league plus-minus carries no signal
	// about NHL games played once the draft year is known.
	a := scoded.ApproximateSC{
		SC:    scoded.MustParseSC("Games _||_ GPM | DraftYear"),
		Alpha: 0.05,
	}
	// GPM = 0 sits mid-range, so the dependence is non-monotone: use the
	// G-test rather than rank correlation.
	res, err := scoded.Check(rel, a, scoded.CheckOptions{Method: scoded.GTest})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("checking %s\n", a)
	fmt.Printf("  combined G = %.2f (df %d), p = %.3g, violated = %v\n\n",
		res.Test.Statistic, res.Test.DF, res.Test.P, res.Violated)

	top, err := scoded.TopK(rel, a.SC, 50, scoded.DrillOptions{
		Strategy: scoded.KStrategy,
		Method:   scoded.DrillGMethod,
	})
	if err != nil {
		log.Fatal(err)
	}

	year := rel.MustColumn("DraftYear")
	gpm := rel.MustColumn("GPM")
	games := rel.MustColumn("Games")
	zeroGPM, pre2000 := 0, 0
	fmt.Println("top-50 drill-down (first 10 shown):")
	for i, r := range top.Rows {
		if i < 10 {
			fmt.Printf("  draft %s  GPM=%-4.0f Games=%.0f\n",
				year.StringAt(r), gpm.Value(r), games.Value(r))
		}
		//scoded:lint-ignore floatcmp imputed-zero GPM cells hold the exact value 0
		if gpm.Value(r) == 0 && games.Value(r) > 0 {
			zeroGPM++
		}
		if y, _ := strconv.Atoi(year.StringAt(r)); y < 2000 {
			pre2000++
		}
	}
	fmt.Printf("\nthe two observations of Figure 7:\n")
	fmt.Printf("  %d/50 records have GPM = 0 while Games > 0 (paper: 45/50)\n", zeroGPM)
	fmt.Printf("  %d/50 records come from draft years before 2000\n", pre2000)
	fmt.Println("\nconclusion: the provider imputed missing pre-2000 GPM values with 0;")
	fmt.Println("training on this data would learn a spurious GPM->Games dependence")
}
