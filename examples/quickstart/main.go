// Quickstart walks through the paper's running example (Figure 2): the car
// database where inserting eight records breaks the expected independence
// between Model and Color. It shows the complete SCODED loop — declare an
// approximate SC, detect its violation, and drill down to the suspect
// records.
package main

import (
	"fmt"
	"log"
	"strings"

	"scoded"
)

const carCSV = `RID,Model,Color
r1,BMW X1,White
r2,BMW X1,Black
r3,BMW X1,White
r4,BMW X1,Black
r5,Toyota Prius,White
r6,Toyota Prius,White
r7,Toyota Prius,White
r8,Toyota Prius,Black
r9,BMW X1,White
r10,BMW X1,White
r11,BMW X1,White
r12,BMW X1,Black
r13,Toyota Prius,Black
r14,Toyota Prius,Black
r15,Toyota Prius,Black
r16,Toyota Prius,Black
`

func main() {
	rel, err := scoded.ReadCSV(strings.NewReader(carCSV))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("loaded %d records over %v\n\n", rel.NumRows(), rel.Columns())

	// The domain knowledge: a car's color should tell us nothing about its
	// model. On this small sample we enforce the SC at a generous alpha.
	a, err := scoded.ParseApproximateSC("Model _||_ Color @ 0.35")
	if err != nil {
		log.Fatal(err)
	}
	res, err := scoded.Check(rel, a, scoded.CheckOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("checking %s\n", a)
	fmt.Printf("  G statistic = %.4f, p-value = %.4f, violated = %v\n\n",
		res.Test.Statistic, res.Test.P, res.Violated)
	if res.Test.Approximate {
		// With 16 records the chi-squared approximation is shaky; confirm
		// with the exact (permutation) test, as Section 4.3 prescribes.
		exact, err := scoded.Check(rel, a, scoded.CheckOptions{Method: scoded.ExactG})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  exact test: p-value = %.4f, violated = %v\n", exact.Test.P, exact.Violated)
		fmt.Println("  (sixteen records carry little evidence either way — the paper's")
		fmt.Println("   example is illustrative; drill-down still localizes the skew)")
		fmt.Println()
	}

	// Error drill-down: which records drive the dependence? The paper's
	// Section 5.2 recommends the K^c strategy for independence SCs — it
	// returns the k records most correlated with each other.
	top, err := scoded.TopK(rel, a.SC, 5, scoded.DrillOptions{Strategy: scoded.KcStrategy})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("top-5 suspect records (K^c strategy):")
	for _, r := range top.Rows {
		fmt.Printf("  %s\n", strings.Join(rel.Row(r), ", "))
	}
	// With K^c the returned rows are the survivors of the worst-to-remove
	// elimination: FinalStat is the G of just those k records, which is
	// high exactly because they are mutually correlated.
	fmt.Printf("\nG of the full data: %.4f; G of the 5 flagged records alone: %.4f\n",
		top.InitialStat, top.FinalStat)
	fmt.Println("\nthe pattern: the flagged records concentrate in the over-represented")
	fmt.Println("(Model, Color) cells that the r9-r16 insertion created")
}
