// Pipeline demonstrates the paper's Section 8 future-work extensions on an
// ML-deployment scenario: an online monitor enforces a dependence SC on
// streaming inference data and flags the moment an upstream imputation bug
// severs it; batch drill-down localizes the faulty records; and cell-level
// repair proposes concrete value corrections that restore the constraint.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"scoded"
)

func main() {
	rng := rand.New(rand.NewSource(7))

	// Phase 1 — healthy traffic: a feature X drives the target-proxy Y, as
	// the trained model expects. The monitor holds the DSC X ~||~ Y at
	// alpha = 0.3 over a 100-record sliding window.
	monitor, err := scoded.NewNumericMonitor(0.3, true, 100)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("phase 1: healthy traffic")
	for i := 0; i < 300; i++ {
		x := rng.NormFloat64()
		monitor.Insert(x, 1.5*x+0.4*rng.NormFloat64())
	}
	v := monitor.Verdict()
	fmt.Printf("  window tau=%.3f p=%.3g violated=%v\n\n", monitor.TauB(), v.P, v.Violated)

	// Phase 2 — a deploy breaks the feature join upstream and Y starts
	// arriving as a constant default. The monitor flips as the window
	// fills with imputed values.
	fmt.Println("phase 2: upstream bug imputes Y to a constant 0")
	flaggedAt := -1
	for i := 0; i < 300; i++ {
		monitor.Insert(rng.NormFloat64(), 0)
		if flaggedAt < 0 && monitor.Verdict().Violated {
			flaggedAt = i + 1
		}
	}
	v = monitor.Verdict()
	fmt.Printf("  violation first flagged after %d corrupted records\n", flaggedAt)
	fmt.Printf("  window tau=%.3f p=%.3g violated=%v\n\n", monitor.TauB(), v.P, v.Violated)

	// Phase 3 — batch forensics on the captured window equivalent: 240
	// clean records then 60 imputed ones.
	n := 300
	xs := make([]float64, n)
	ys := make([]float64, n)
	for i := 0; i < n; i++ {
		xs[i] = rng.NormFloat64()
		if i < 240 {
			ys[i] = 1.5*xs[i] + 0.4*rng.NormFloat64()
		} else {
			ys[i] = 0
		}
	}
	rel, err := scoded.NewRelation(
		scoded.NewNumericColumn("X", xs),
		scoded.NewNumericColumn("Y", ys),
	)
	if err != nil {
		log.Fatal(err)
	}
	dsc := scoded.MustParseSC("X ~||~ Y")
	top, err := scoded.TopK(rel, dsc, 60, scoded.DrillOptions{})
	if err != nil {
		log.Fatal(err)
	}
	hits := 0
	for _, r := range top.Rows {
		if r >= 240 {
			hits++
		}
	}
	fmt.Println("phase 3: batch drill-down on the captured snapshot")
	fmt.Printf("  top-60 drill-down hits %d/60 imputed records (precision %.2f)\n\n", hits, float64(hits)/60)

	// Phase 4 — cell repair: propose corrections that restore the
	// dependence while the upstream fix ships.
	rep, err := scoded.RepairTopKCells(rel, dsc, 60, scoded.RepairOptions{})
	if err != nil {
		log.Fatal(err)
	}
	repaired, err := scoded.ApplyCorrections(rel, rep.Corrections)
	if err != nil {
		log.Fatal(err)
	}
	before, err := scoded.Check(rel, scoded.ApproximateSC{SC: dsc, Alpha: 0.3}, scoded.CheckOptions{})
	if err != nil {
		log.Fatal(err)
	}
	after, err := scoded.Check(repaired, scoded.ApproximateSC{SC: dsc, Alpha: 0.3}, scoded.CheckOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("phase 4: cell-level repair (Section 8 extension)")
	fmt.Printf("  %d corrections proposed; first: row %d, %s: %s -> %s\n",
		len(rep.Corrections), rep.Corrections[0].Row, rep.Corrections[0].Column,
		rep.Corrections[0].Old, rep.Corrections[0].New)
	fmt.Printf("  tau before repair %.3f (violated=%v) -> after repair %.3f (violated=%v)\n",
		before.Test.Statistic, before.Violated, after.Test.Statistic, after.Violated)
}
