// Features reproduces the paper's introductory scenario: before building a
// car-price regression model, a data scientist tests each candidate
// feature's statistical relationship to the target, pins the findings down
// as SCs (RowID ⊥ Price, Model ⊥̸ Price, ...), and uses the pinned family —
// with false-discovery-rate control — to vet a later data delivery that
// suffers the classic KDD-Cup sorting error.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"sort"

	"scoded"
)

func carData(rng *rand.Rand, n int, sorted bool) *scoded.Relation {
	rowID := make([]float64, n)
	model := make([]string, n)
	color := make([]string, n)
	price := make([]float64, n)
	for i := 0; i < n; i++ {
		rowID[i] = float64(i)
		m := rng.Intn(3)
		model[i] = []string{"bmw", "prius", "civic"}[m]
		color[i] = []string{"white", "black", "blue"}[rng.Intn(3)]
		price[i] = 20 + float64(m)*15 + 3*rng.NormFloat64()
	}
	if sorted {
		// The KDD-Cup 2008 style processing error: records re-ordered by
		// the target, silently correlating RowID with Price.
		sort.Float64s(price)
	}
	rel, err := scoded.NewRelation(
		scoded.NewNumericColumn("RowID", rowID),
		scoded.NewCategoricalColumn("Model", model),
		scoded.NewCategoricalColumn("Color", color),
		scoded.NewNumericColumn("Price", price),
	)
	if err != nil {
		log.Fatal(err)
	}
	return rel
}

func main() {
	rng := rand.New(rand.NewSource(11))
	train := carData(rng, 1000, false)

	fmt.Println("step 1: rank candidate features against the target Price")
	ranked, err := scoded.RankFeatures(train, "Price", []string{"RowID", "Model", "Color"}, 0.05)
	if err != nil {
		log.Fatal(err)
	}
	var pinned []scoded.ApproximateSC
	for _, r := range ranked {
		verdict := "irrelevant"
		if r.Relevant {
			verdict = "RELEVANT"
		}
		fmt.Printf("  %-8s p=%-10.3g %-10s pin: %s\n", r.Feature, r.Test.P, verdict, r.SC)
		alpha := 0.05
		if r.SC.Dependence {
			alpha = 0.3
		}
		pinned = append(pinned, scoded.ApproximateSC{SC: r.SC, Alpha: alpha})
	}

	fmt.Println("\nstep 2: a new data delivery arrives, suffering a sorting error")
	delivery := carData(rng, 1000, true)
	results, err := scoded.CheckAll(delivery, pinned, scoded.BatchCheckOptions{FDR: 0.05})
	if err != nil {
		log.Fatal(err)
	}
	for _, res := range results {
		verdict := "ok"
		if res.Violated {
			verdict = "VIOLATED"
		}
		fmt.Printf("  %-30s p=%-10.3g %s\n", res.Constraint.SC, res.Test.P, verdict)
	}
	fmt.Println("\nthe pinned RowID _||_ Price constraint catches the sorting error that")
	fmt.Println("won KDD-Cup 2008 — before the model trains on leaked ordering")
}
