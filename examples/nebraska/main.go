// Nebraska reproduces the paper's Section 6.2 model-testing case study. A
// weather classifier was trained on historical data in which Wind and
// Sea-level pressure strongly predict the Weather label. Before trusting
// the model on the 1970-1999 test window, the analyst enforces the two
// dependencies as approximate SCs per year — and SCODED flags exactly the
// years whose data was corrupted by constant imputation (Wind, 1978 and
// 1989) and gross outliers (Sea, 1972).
package main

import (
	"fmt"
	"log"
	"strconv"
	"strings"

	"scoded"
	"scoded/internal/datasets"
)

func main() {
	nd := datasets.Nebraska(datasets.NebraskaOptions{Seed: 42})
	rel := nd.Rel
	fmt.Printf("loaded %d weather records (1970-1999)\n\n", rel.NumRows())

	groups := rel.GroupBy([]string{"Year"})
	const alpha = 0.3

	for _, cfg := range []struct {
		feature string
		sc      string
	}{
		{"Wind", "Wind ~||~ Weather"},
		{"Sea", "Sea ~||~ Weather"},
	} {
		fmt.Printf("enforcing <%s | Year, alpha=%.1f> per year (p >= %.1f violates):\n",
			cfg.sc, alpha, alpha)
		var violations []string
		var bars []string
		for year := 1970; year <= 1999; year++ {
			sub := rel.Subset(groups[strconv.Itoa(year)])
			res, err := scoded.Check(sub,
				scoded.ApproximateSC{SC: scoded.MustParseSC(cfg.sc), Alpha: alpha},
				scoded.CheckOptions{})
			if err != nil {
				log.Fatal(err)
			}
			marker := ""
			if res.Violated {
				marker = "  <-- VIOLATED"
				violations = append(violations, strconv.Itoa(year))
			}
			bars = append(bars, fmt.Sprintf("  %d p=%-7.4f %s%s",
				year, res.Test.P, strings.Repeat("#", int(res.Test.P*40)), marker))
		}
		for _, b := range bars {
			fmt.Println(b)
		}
		fmt.Printf("=> %s violations: %v\n\n", cfg.feature, violations)
	}

	// Drill into 1972's sea-pressure violation: how many of the outliers
	// does the top-k recover (the paper reports about 64%)?
	rows := groups["1972"]
	sub := rel.Subset(rows)
	nOut := 0
	for _, r := range rows {
		if nd.Truth[r] {
			nOut++
		}
	}
	top, err := scoded.TopK(sub, scoded.MustParseSC("Sea ~||~ Weather"), nOut,
		scoded.DrillOptions{Strategy: scoded.KStrategy})
	if err != nil {
		log.Fatal(err)
	}
	hits := 0
	for _, local := range top.Rows {
		if nd.Truth[rows[local]] {
			hits++
		}
	}
	fmt.Printf("1972 drill-down: top-%d recovered %d/%d planted outliers (%.0f%%)\n",
		nOut, hits, nOut, 100*float64(hits)/float64(nOut))
}
