// Sensor reproduces the Figure 9 comparison on the Intel-Lab-style sensor
// data: mean-imputed readings hide among normal values, and the dependence
// SC T8 ⊥̸ T9 finds them where a denial constraint drowns in false
// positives and an outlier detector sees nothing unusual.
package main

import (
	"fmt"
	"log"

	"scoded"
	"scoded/internal/baselines/dboost"
	"scoded/internal/baselines/dcdetect"
	"scoded/internal/datasets"
	"scoded/internal/eval"
	"scoded/internal/ic"
)

func main() {
	data := datasets.Sensor(datasets.SensorOptions{Seed: 42})
	rel := data.Rel
	nErr := eval.TruthCount(data.Truth)
	fmt.Printf("loaded %d hourly readings from sensors 7, 8, 9 (%d corrupted)\n\n",
		rel.NumRows(), nErr)

	// SCODED: drill into the dependence SC.
	c := scoded.MustParseSC("T8 ~||~ T9")
	res, err := scoded.Check(rel, scoded.ApproximateSC{SC: c, Alpha: 0.3}, scoded.CheckOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("T8 ~||~ T9: tau=%.3f p=%.3g (dependence %s)\n\n",
		res.Test.Statistic, res.Test.P,
		map[bool]string{true: "ABSENT — violated", false: "present"}[res.Violated])

	k := nErr
	top, err := scoded.TopK(rel, c, k, scoded.DrillOptions{Strategy: scoded.KStrategy})
	if err != nil {
		log.Fatal(err)
	}
	report := func(name string, rows []int) {
		m, err := eval.At(rows, data.Truth)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-26s precision@%d=%.3f recall=%.3f F=%.3f\n", name, k, m.Precision, m.Recall, m.F)
	}
	report("SCODED (tau drill-down)", top.Rows)

	// DCDetect with the Table 3 cross-column monotonicity constraint.
	dc := &dcdetect.Detector{DCs: []ic.DC{ic.CrossMonotoneDC("T8", "T9")}}
	dcRows, err := dc.TopK(rel, k)
	if err != nil {
		log.Fatal(err)
	}
	report("DCDetect (denial constr.)", dcRows)

	// DBoost outlier detection over the same columns.
	db := &dboost.Detector{Opts: dboost.Options{Model: dboost.GMM, Columns: []string{"T8", "T9"}}}
	dbRows, err := db.TopK(rel, k)
	if err != nil {
		log.Fatal(err)
	}
	report("DBoost (GMM outliers)", dbRows)

	fmt.Println("\nwhy the gap: the errors are column means — perfectly normal values")
	fmt.Println("per column (invisible to DBoost), while the noisy cross-column DC")
	fmt.Println("fires on clean pairs too; only the statistical dependence isolates them")
}
