package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"io"
	"strconv"
	"strings"

	"scoded"
	"scoded/internal/engine"
)

// runRepair implements `scoded repair`: propose (and optionally emit a
// repaired CSV of) the top-k cell corrections for a constraint.
func runRepair(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("repair", flag.ExitOnError)
	data := fs.String("data", "", "CSV file with a header row")
	expr := fs.String("sc", "", "constraint")
	k := fs.Int("k", 10, "number of corrections to propose")
	apply := fs.String("apply", "", "write the repaired relation to this CSV path")
	fs.Parse(args)

	rel, err := loadData(*data)
	if err != nil {
		return err
	}
	c, err := scoded.ParseSC(*expr)
	if err != nil {
		return err
	}
	res, err := scoded.RepairTopKCells(rel, c, *k, scoded.RepairOptions{})
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "statistic %.4g -> %.4g with %d corrections\n",
		res.InitialStat, res.FinalStat, len(res.Corrections))
	for _, cor := range res.Corrections {
		fmt.Fprintf(out, "row %-5d %s: %q -> %q (gain %.4g)\n",
			cor.Row, cor.Column, cor.Old, cor.New, cor.Gain)
	}
	if *apply != "" {
		repaired, err := scoded.ApplyCorrections(rel, res.Corrections)
		if err != nil {
			return err
		}
		if err := repaired.WriteCSVFile(*apply); err != nil {
			return err
		}
		fmt.Fprintf(out, "repaired relation written to %s\n", *apply)
	}
	return nil
}

// runCheckAll implements `scoded checkall`: a family of constraints with
// optional Benjamini-Hochberg FDR control. An interrupt (or an expired
// -timeout) drains the family instead of discarding it: finished
// constraints report normally, unfinished ones as ERROR rows, and the
// command exits nonzero with the interruption cause.
func runCheckAll(ctx context.Context, args []string, out io.Writer) error {
	fs := flag.NewFlagSet("checkall", flag.ExitOnError)
	data := fs.String("data", "", "CSV file with a header row")
	var exprs scList
	fs.Var(&exprs, "sc", "approximate constraint \"expr @ alpha\" (repeatable)")
	fdr := fs.Float64("fdr", 0, "Benjamini-Hochberg false discovery rate (0 = per-constraint alpha rule)")
	timeout := fs.Duration("timeout", 0, "abort the family after this duration (0 = no limit)")
	fs.Parse(args)

	rel, err := loadData(*data)
	if err != nil {
		return err
	}
	if len(exprs) == 0 {
		return fmt.Errorf("no -sc flags given")
	}
	var as []scoded.ApproximateSC
	for _, e := range exprs {
		a, err := scoded.ParseApproximateSC(e)
		if err != nil {
			return err
		}
		as = append(as, a)
	}
	ctx, cancel := engine.WithTimeout(ctx, *timeout)
	defer cancel()
	results, err := scoded.CheckAllContext(ctx, rel, as, scoded.BatchCheckOptions{FDR: *fdr})
	if err != nil {
		return err
	}
	violations := 0
	for _, r := range results {
		if r.Err != nil {
			fmt.Fprintf(out, "%-40s ERROR: %v\n", r.Constraint.SC, r.Err)
			continue
		}
		verdict := "ok"
		if r.Violated {
			verdict = "VIOLATED"
			violations++
		}
		fmt.Fprintf(out, "%-40s p=%-10.4g %s\n", r.Constraint.SC, r.Test.P, verdict)
	}
	fmt.Fprintf(out, "%d/%d constraints violated\n", violations, len(results))
	if ctxErr := ctx.Err(); ctxErr != nil {
		return fmt.Errorf("checkall interrupted; results above are partial: %w", ctxErr)
	}
	return nil
}

// runWatch implements `scoded watch`: stream numeric or categorical value
// pairs (one "x,y" per line) from a reader through an online monitor,
// reporting the verdict at a fixed cadence and whenever it flips. An
// interrupt stops the stream between records; the final verdict over the
// records seen so far is still printed.
func runWatch(ctx context.Context, args []string, in io.Reader, out io.Writer) error {
	fs := flag.NewFlagSet("watch", flag.ExitOnError)
	alpha := fs.Float64("alpha", 0.05, "significance level")
	dep := fs.Bool("dep", false, "monitor a dependence SC (violated when dependence vanishes)")
	window := fs.Int("window", 0, "sliding window size (0 = unbounded)")
	numeric := fs.Bool("numeric", true, "treat the two values as numeric")
	every := fs.Int("every", 100, "report cadence in records")
	fs.Parse(args)

	if *every <= 0 {
		return fmt.Errorf("-every must be positive")
	}
	var catMon *scoded.CategoricalMonitor
	var numMon *scoded.NumericMonitor
	var err error
	if *numeric {
		numMon, err = scoded.NewNumericMonitor(*alpha, *dep, *window)
	} else {
		catMon, err = scoded.NewCategoricalMonitor(*alpha, *dep, *window)
	}
	if err != nil {
		return err
	}
	verdict := func() scoded.StreamVerdict {
		if numMon != nil {
			return numMon.Verdict()
		}
		return catMon.Verdict()
	}

	scanner := bufio.NewScanner(in)
	n := 0
	prev := false
	interrupted := false
	for scanner.Scan() {
		if ctx.Err() != nil {
			interrupted = true
			break
		}
		line := strings.TrimSpace(scanner.Text())
		if line == "" {
			continue
		}
		parts := strings.SplitN(line, ",", 2)
		if len(parts) != 2 {
			return fmt.Errorf("line %d: want \"x,y\", got %q", n+1, line)
		}
		if numMon != nil {
			x, err := strconv.ParseFloat(strings.TrimSpace(parts[0]), 64)
			if err != nil {
				return fmt.Errorf("line %d: %w", n+1, err)
			}
			y, err := strconv.ParseFloat(strings.TrimSpace(parts[1]), 64)
			if err != nil {
				return fmt.Errorf("line %d: %w", n+1, err)
			}
			numMon.Insert(x, y)
		} else {
			catMon.Insert(strings.TrimSpace(parts[0]), strings.TrimSpace(parts[1]))
		}
		n++
		v := verdict()
		if v.Violated != prev {
			fmt.Fprintf(out, "record %d: verdict flipped to violated=%v (p=%.4g)\n", n, v.Violated, v.P)
			prev = v.Violated
		} else if n%*every == 0 {
			fmt.Fprintf(out, "record %d: p=%.4g violated=%v\n", n, v.P, v.Violated)
		}
	}
	if err := scanner.Err(); err != nil {
		return err
	}
	v := verdict()
	fmt.Fprintf(out, "final after %d records: p=%.4g violated=%v\n", n, v.P, v.Violated)
	if interrupted {
		return fmt.Errorf("watch interrupted after %d records: %w", n, ctx.Err())
	}
	return nil
}
