package main

import (
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeCSV drops a test CSV in a temp dir and returns its path.
func writeCSV(t *testing.T, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "data.csv")
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

const carCSV = `Model,Color
BMW,White
BMW,White
BMW,White
BMW,White
BMW,White
BMW,Black
Prius,Black
Prius,Black
Prius,Black
Prius,Black
Prius,Black
Prius,White
`

const numericCSV = `X,Y
1,1
2,2
3,3
4,4
5,5
6,6
7,7
8,8
9,9
10,10
`

func TestRunCheck(t *testing.T) {
	path := writeCSV(t, carCSV)
	var sb strings.Builder
	err := runCheck(context.Background(), []string{"-data", path, "-sc", "Model _||_ Color", "-alpha", "0.1"}, &sb)
	if err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"constraint: Model _||_ Color", "p-value:", "result:"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRunCheckMethods(t *testing.T) {
	path := writeCSV(t, numericCSV)
	for _, m := range []string{"auto", "kendall", "pearson", "spearman", "g", "exact-g", "exact-kendall"} {
		var sb strings.Builder
		if err := runCheck(context.Background(), []string{"-data", path, "-sc", "X _||_ Y", "-method", m}, &sb); err != nil {
			t.Errorf("method %s: %v", m, err)
		}
		if !strings.Contains(sb.String(), "VIOLATED") {
			t.Errorf("method %s: perfect dependence not flagged:\n%s", m, sb.String())
		}
	}
	var sb strings.Builder
	if err := runCheck(context.Background(), []string{"-data", path, "-sc", "X _||_ Y", "-method", "bogus"}, &sb); err == nil {
		t.Error("want error for unknown method")
	}
}

func TestRunCheckErrors(t *testing.T) {
	var sb strings.Builder
	if err := runCheck(context.Background(), []string{"-sc", "A _||_ B"}, &sb); err == nil {
		t.Error("want error for missing -data")
	}
	path := writeCSV(t, carCSV)
	if err := runCheck(context.Background(), []string{"-data", path, "-sc", "garbage"}, &sb); err == nil {
		t.Error("want error for bad constraint")
	}
	if err := runCheck(context.Background(), []string{"-data", "/nonexistent.csv", "-sc", "A _||_ B"}, &sb); err == nil {
		t.Error("want error for missing file")
	}
}

func TestRunDrilldown(t *testing.T) {
	path := writeCSV(t, carCSV)
	var sb strings.Builder
	err := runDrilldown(context.Background(), []string{"-data", path, "-sc", "Model _||_ Color", "-k", "3", "-strategy", "k"}, &sb)
	if err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "strategy: K") {
		t.Errorf("missing strategy line:\n%s", out)
	}
	if strings.Count(out, "\n") < 4 {
		t.Errorf("expected 3 record lines:\n%s", out)
	}
	if err := runDrilldown(context.Background(), []string{"-data", path, "-sc", "Model _||_ Color", "-strategy", "zigzag"}, &sb); err == nil {
		t.Error("want error for unknown strategy")
	}
	if err := runDrilldown(context.Background(), []string{"-data", path, "-sc", "Model _||_ Color", "-method", "bogus"}, &sb); err == nil {
		t.Error("want error for unknown method")
	}
}

func TestRunDrilldownExplainAndMethod(t *testing.T) {
	path := writeCSV(t, carCSV)
	var sb strings.Builder
	err := runDrilldown(context.Background(), []string{
		"-data", path, "-sc", "Model _||_ Color", "-k", "4",
		"-strategy", "k", "-method", "g", "-explain",
	}, &sb)
	if err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "pattern:") && !strings.Contains(out, "no enriched patterns") {
		t.Errorf("explain output missing:\n%s", out)
	}
	// The tau method must reject categorical columns.
	if err := runDrilldown(context.Background(), []string{
		"-data", path, "-sc", "Model _||_ Color", "-method", "tau",
	}, &sb); err == nil {
		t.Error("tau method on categorical columns should error")
	}
}

func TestRunPartition(t *testing.T) {
	path := writeCSV(t, numericCSV)
	var sb strings.Builder
	err := runPartition([]string{"-data", path, "-sc", "X ~||~ Y", "-alpha", "0.001"}, &sb)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "resolved") {
		t.Errorf("output:\n%s", sb.String())
	}
}

func TestRunProfile(t *testing.T) {
	path := writeCSV(t, numericCSV)
	var sb strings.Builder
	if err := runProfile([]string{"-data", path}, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "X") || !strings.Contains(out, "suggest:") {
		t.Errorf("profile output:\n%s", out)
	}
}

func TestRunConsistency(t *testing.T) {
	var sb strings.Builder
	if err := runConsistency([]string{"-sc", "A _||_ B", "-sc", "C ~||~ D"}, &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "consistent") {
		t.Errorf("output:\n%s", sb.String())
	}
	sb.Reset()
	if err := runConsistency([]string{"-sc", "A _||_ B", "-sc", "A ~||~ B"}, &sb); err == nil {
		t.Error("conflicting set should return an error")
	}
	if !strings.Contains(sb.String(), "conflict:") {
		t.Errorf("output:\n%s", sb.String())
	}
	if err := runConsistency(nil, &sb); err == nil {
		t.Error("want error for no constraints")
	}
	if err := runConsistency([]string{"-sc", "bogus"}, &sb); err == nil {
		t.Error("want error for unparsable constraint")
	}
}
