package main

import (
	"context"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
)

const fdCSV = `Zip,City
z1,A
z1,A
z1,A
z1,C
z2,C
z2,C
z2,C
z2,C
`

func TestRunRepair(t *testing.T) {
	path := writeCSV(t, fdCSV)
	outPath := filepath.Join(t.TempDir(), "repaired.csv")
	var sb strings.Builder
	err := runRepair([]string{"-data", path, "-sc", "Zip ~||~ City", "-k", "1", "-apply", outPath}, &sb)
	if err != nil {
		t.Fatal(err)
	}
	outStr := sb.String()
	if !strings.Contains(outStr, `City: "C" -> "A"`) {
		t.Errorf("repair output:\n%s", outStr)
	}
	repaired, err := os.ReadFile(outPath)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Count(string(repaired), "z1,C") != 0 {
		t.Errorf("repaired CSV still contains the typo:\n%s", repaired)
	}
	if err := runRepair([]string{"-sc", "A ~||~ B"}, &sb); err == nil {
		t.Error("want error for missing -data")
	}
}

func TestRunCheckAll(t *testing.T) {
	path := writeCSV(t, numericCSV)
	var sb strings.Builder
	err := runCheckAll(context.Background(), []string{
		"-data", path,
		"-sc", "X _||_ Y @ 0.05",
		"-sc", "X ~||~ Y @ 0.3",
		"-fdr", "0.05",
	}, &sb)
	if err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "1/2 constraints violated") {
		t.Errorf("checkall output:\n%s", out)
	}
	if err := runCheckAll(context.Background(), []string{"-data", path}, &sb); err == nil {
		t.Error("want error for no constraints")
	}
	if err := runCheckAll(context.Background(), []string{"-data", path, "-sc", "garbage"}, &sb); err == nil {
		t.Error("want error for bad constraint")
	}
}

func TestRunWatchNumeric(t *testing.T) {
	// 120 dependent pairs then 200 constant-y pairs through a DSC monitor
	// with a window: the verdict must flip to violated.
	var in strings.Builder
	for i := 0; i < 120; i++ {
		v := float64(i%37) / 3
		in.WriteString(strings.TrimSpace(
			strings.Join([]string{fmtFloat(v), fmtFloat(2 * v)}, ",")) + "\n")
	}
	for i := 0; i < 200; i++ {
		in.WriteString(fmtFloat(float64(i%37)) + ",0\n")
	}
	var out strings.Builder
	err := runWatch(context.Background(), []string{"-dep", "-alpha", "0.3", "-window", "100", "-every", "1000"},
		strings.NewReader(in.String()), &out)
	if err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "verdict flipped to violated=true") {
		t.Errorf("watch output missing flip:\n%s", s)
	}
	if !strings.Contains(s, "final after 320 records: ") {
		t.Errorf("watch output missing final line:\n%s", s)
	}
}

func TestRunWatchCategorical(t *testing.T) {
	var in strings.Builder
	for i := 0; i < 200; i++ {
		x := []string{"a", "b"}[i%2]
		in.WriteString(x + "," + x + "\n") // perfectly dependent
	}
	var out strings.Builder
	err := runWatch(context.Background(), []string{"-numeric=false", "-alpha", "0.05", "-every", "50"},
		strings.NewReader(in.String()), &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "violated=true") {
		t.Errorf("dependent categorical stream should violate the ISC:\n%s", out.String())
	}
}

func TestRunWatchErrors(t *testing.T) {
	var out strings.Builder
	if err := runWatch(context.Background(), []string{"-every", "0"}, strings.NewReader(""), &out); err == nil {
		t.Error("want error for bad cadence")
	}
	if err := runWatch(context.Background(), nil, strings.NewReader("not-a-pair\n"), &out); err == nil {
		t.Error("want error for malformed line")
	}
	if err := runWatch(context.Background(), nil, strings.NewReader("a,b\n"), &out); err == nil {
		t.Error("want error for non-numeric values in numeric mode")
	}
}

func fmtFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}
