package main

import (
	"flag"
	"fmt"
	"io"

	"scoded/internal/store"
)

// runStore implements `scoded store <ls|verify|compact>` against a durable
// data directory (the same one scoded-serve's -data-dir uses).
func runStore(args []string, out io.Writer) error {
	if len(args) < 1 {
		return fmt.Errorf("usage: scoded store <ls|verify|compact> -dir <data-dir> [-dataset name]")
	}
	sub := args[0]
	fs := flag.NewFlagSet("store "+sub, flag.ExitOnError)
	dir := fs.String("dir", "", "store data directory")
	dsName := fs.String("dataset", "", "restrict to one dataset (compact only; default all)")
	fs.Parse(args[1:])
	if *dir == "" {
		return fmt.Errorf("missing -dir flag")
	}
	st, err := store.Open(*dir)
	if err != nil {
		return err
	}
	switch sub {
	case "ls":
		return storeLs(st, out)
	case "verify":
		return storeVerify(st, out)
	case "compact":
		return storeCompact(st, *dsName, out)
	default:
		return fmt.Errorf("unknown store subcommand %q (want ls, verify or compact)", sub)
	}
}

func storeLs(st *store.Store, out io.Writer) error {
	names, err := st.Datasets()
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "%-24s %8s %8s %10s %10s %s\n", "DATASET", "VERSION", "ROWS", "SEGMENTS", "BYTES", "MONITORS")
	for _, name := range names {
		m, err := st.Manifest(name)
		if err != nil {
			return err
		}
		var bytes int64
		for _, seg := range m.Segments {
			bytes += seg.Bytes
		}
		fmt.Fprintf(out, "%-24s %8d %8d %10d %10d %d\n",
			name, m.Version, m.Rows, len(m.Segments), bytes, len(m.Monitors))
	}
	stats, err := st.Stats()
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "total: %d dataset(s), %d segment(s), %d bytes\n", stats.Datasets, stats.Segments, stats.Bytes)
	return nil
}

func storeVerify(st *store.Store, out io.Writer) error {
	checks, err := st.Verify()
	if err != nil {
		return err
	}
	bad := 0
	for _, c := range checks {
		if c.Err != nil {
			bad++
			fmt.Fprintf(out, "%-24s CORRUPT: %v\n", c.Name, c.Err)
			continue
		}
		fmt.Fprintf(out, "%-24s ok (version %d, %d rows, %d segments, %d bytes)\n",
			c.Name, c.Version, c.Rows, c.Segments, c.Bytes)
	}
	if bad > 0 {
		return fmt.Errorf("%d dataset(s) failed verification", bad)
	}
	return nil
}

func storeCompact(st *store.Store, dataset string, out io.Writer) error {
	names := []string{dataset}
	if dataset == "" {
		var err error
		names, err = st.Datasets()
		if err != nil {
			return err
		}
	}
	for _, name := range names {
		before, err := st.Manifest(name)
		if err != nil {
			return err
		}
		after, err := st.Compact(name)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "%-24s %d -> %d segment(s)\n", name, len(before.Segments), len(after.Segments))
	}
	return nil
}
