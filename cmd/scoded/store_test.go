package main

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"scoded/internal/relation"
	"scoded/internal/store"
)

// buildStoreDir persists a two-segment dataset and returns its manifest
// segment byte total.
func buildStoreDir(t *testing.T, dir string) int64 {
	t.Helper()
	st, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	rel := func(vals []string, nums []float64) *relation.Relation {
		r, err := relation.New(
			relation.NewCategoricalColumn("Team", vals),
			relation.NewNumericColumn("GPM", nums),
		)
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	if _, err := st.Replace("hockey", rel([]string{"a", "b", "a", "c"}, []float64{1, 2, 3, 4})); err != nil {
		t.Fatal(err)
	}
	m, err := st.Append("hockey", rel([]string{"b", "c"}, []float64{5, 6}))
	if err != nil {
		t.Fatal(err)
	}
	var total int64
	for _, seg := range m.Segments {
		total += seg.Bytes
	}
	return total
}

// corruptAllSegments flips a byte in the middle of every segment file so
// any code path that decodes rows fails its checksum.
func corruptAllSegments(t *testing.T, dir string) {
	t.Helper()
	segs, err := filepath.Glob(filepath.Join(dir, "*", "seg-*.bin"))
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) == 0 {
		t.Fatal("no segment files to corrupt")
	}
	for _, path := range segs {
		b, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		b[len(b)/2] ^= 0xff
		if err := os.WriteFile(path, b, 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

// TestStoreLsIsManifestOnly pins that `scoded store ls` answers from
// manifests alone: with every segment file corrupted, ls still reports the
// exact rows/segments/bytes, while verify — which does read rows — fails.
func TestStoreLsIsManifestOnly(t *testing.T) {
	dir := t.TempDir()
	wantBytes := buildStoreDir(t, dir)
	corruptAllSegments(t, dir)

	var out bytes.Buffer
	if err := runStore([]string{"ls", "-dir", dir}, &out); err != nil {
		t.Fatalf("store ls after segment corruption: %v", err)
	}
	got := out.String()
	for _, want := range []string{"hockey", "total: 1 dataset(s), 2 segment(s)"} {
		if !strings.Contains(got, want) {
			t.Fatalf("store ls output missing %q:\n%s", want, got)
		}
	}
	var name string
	var version, rows, segments, bytesCol, monitors int64
	lines := strings.Split(strings.TrimSpace(got), "\n")
	if len(lines) != 3 {
		t.Fatalf("got %d output lines, want header + dataset + total:\n%s", len(lines), got)
	}
	fields := strings.Fields(lines[1])
	if len(fields) != 6 {
		t.Fatalf("dataset line has %d fields, want 6: %q", len(fields), lines[1])
	}
	if _, err := fmt.Sscan(lines[1], &name, &version, &rows, &segments, &bytesCol, &monitors); err != nil {
		t.Fatalf("parsing dataset line %q: %v", lines[1], err)
	}
	if name != "hockey" || version != 2 || rows != 6 || segments != 2 || bytesCol != wantBytes || monitors != 0 {
		t.Fatalf("store ls reported %s v%d rows=%d segs=%d bytes=%d monitors=%d; want hockey v2 rows=6 segs=2 bytes=%d monitors=0",
			name, version, rows, segments, bytesCol, monitors, wantBytes)
	}

	// Contrast: verify decodes rows, so the same corruption must surface.
	out.Reset()
	err := runStore([]string{"verify", "-dir", dir}, &out)
	if err == nil {
		t.Fatalf("store verify passed on corrupted segments:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "CORRUPT") {
		t.Fatalf("store verify output missing CORRUPT marker:\n%s", out.String())
	}
}
