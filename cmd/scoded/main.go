// Command scoded is the SCODED command-line interface: check statistical
// constraints against CSV data, drill down into violations, repair by
// partition, profile correlations, and check constraint-set consistency.
//
// Usage:
//
//	scoded check      -data cars.csv -sc "Model _||_ Color" -alpha 0.05
//	scoded drilldown  -data cars.csv -sc "Model _||_ Color" -k 5
//	scoded partition  -data cars.csv -sc "Model _||_ Color" -alpha 0.05
//	scoded profile    -data cars.csv -cols Model,Color,Price
//	scoded consistency -sc "A _||_ B,C" -sc "A ~||~ B"
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strings"

	"scoded"
	"scoded/internal/engine"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	// A first SIGINT cancels the command's context so the long-running
	// subcommands unwind gracefully (checkall reports the constraints it
	// finished, watch prints its final verdict); a second one kills the
	// process through the default handler that stop() restores.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	var err error
	switch os.Args[1] {
	case "check":
		err = runCheck(ctx, os.Args[2:], os.Stdout)
	case "drilldown":
		err = runDrilldown(ctx, os.Args[2:], os.Stdout)
	case "partition":
		err = runPartition(os.Args[2:], os.Stdout)
	case "profile":
		err = runProfile(os.Args[2:], os.Stdout)
	case "consistency":
		err = runConsistency(os.Args[2:], os.Stdout)
	case "repair":
		err = runRepair(os.Args[2:], os.Stdout)
	case "checkall":
		err = runCheckAll(ctx, os.Args[2:], os.Stdout)
	case "watch":
		err = runWatch(ctx, os.Args[2:], os.Stdin, os.Stdout)
	case "store":
		err = runStore(os.Args[2:], os.Stdout)
	case "-h", "--help", "help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "scoded: unknown command %q\n", os.Args[1])
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "scoded:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: scoded <command> [flags]

commands:
  check        test whether a dataset violates an approximate SC
  checkall     test a family of SCs, optionally with FDR control
  drilldown    top-k records contributing most to a violation
  partition    minimal record set whose removal repairs the violation
  repair       top-k cell corrections restoring a violated SC
  watch        stream "x,y" pairs from stdin through an online monitor
  profile      correlation-matrix profiling and SC suggestions
  consistency  check a set of SCs for graphoid contradictions
  store        inspect a durable data directory (ls, verify, compact)`)
}

func loadData(path string) (*scoded.Relation, error) {
	if path == "" {
		return nil, fmt.Errorf("missing -data flag")
	}
	return scoded.ReadCSVFile(path)
}

func methodFromName(name string) (scoded.TestMethod, error) {
	switch name {
	case "", "auto":
		return scoded.Auto, nil
	case "g":
		return scoded.GTest, nil
	case "kendall":
		return scoded.Kendall, nil
	case "pearson":
		return scoded.Pearson, nil
	case "spearman":
		return scoded.Spearman, nil
	case "exact-g":
		return scoded.ExactG, nil
	case "exact-kendall":
		return scoded.ExactKendall, nil
	default:
		return scoded.Auto, fmt.Errorf("unknown method %q", name)
	}
}

func runCheck(ctx context.Context, args []string, out io.Writer) error {
	fs := flag.NewFlagSet("check", flag.ExitOnError)
	data := fs.String("data", "", "CSV file with a header row")
	expr := fs.String("sc", "", `constraint, e.g. "Model _||_ Color" or "Wind ~||~ Weather | Year"`)
	alpha := fs.Float64("alpha", 0.05, "false dependence rate")
	method := fs.String("method", "auto", "test statistic: auto, g, kendall, pearson, spearman, exact-g, exact-kendall")
	timeout := fs.Duration("timeout", 0, "abort the check after this duration (0 = no limit)")
	fs.Parse(args)

	rel, err := loadData(*data)
	if err != nil {
		return err
	}
	c, err := scoded.ParseSC(*expr)
	if err != nil {
		return err
	}
	m, err := methodFromName(*method)
	if err != nil {
		return err
	}
	ctx, cancel := engine.WithTimeout(ctx, *timeout)
	defer cancel()
	res, err := scoded.CheckContext(ctx, rel, scoded.ApproximateSC{SC: c, Alpha: *alpha}, scoded.CheckOptions{Method: m})
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "constraint: %s\n", c)
	fmt.Fprintf(out, "method:     %s\n", res.Method)
	fmt.Fprintf(out, "statistic:  %.6g\n", res.Test.Statistic)
	fmt.Fprintf(out, "p-value:    %.6g\n", res.Test.P)
	if res.Test.Approximate {
		fmt.Fprintln(out, "warning:    sample size is in the approximation-unreliable regime; consider -method exact-g / exact-kendall")
	}
	for _, s := range res.Strata {
		if s.Skipped {
			fmt.Fprintf(out, "stratum %s: skipped (%d records)\n", s.Key, s.Size)
			continue
		}
		fmt.Fprintf(out, "stratum %s: n=%d stat=%.4g p=%.4g\n", s.Key, s.Size, s.Test.Statistic, s.Test.P)
	}
	if res.Violated {
		fmt.Fprintln(out, "result:     VIOLATED")
	} else {
		fmt.Fprintln(out, "result:     not violated")
	}
	return nil
}

func runDrilldown(ctx context.Context, args []string, out io.Writer) error {
	fs := flag.NewFlagSet("drilldown", flag.ExitOnError)
	data := fs.String("data", "", "CSV file with a header row")
	expr := fs.String("sc", "", "constraint")
	k := fs.Int("k", 10, "number of records to return")
	strategy := fs.String("strategy", "best", "greedy strategy: best, k, kc")
	method := fs.String("method", "auto", "statistic path: auto, g (force the G path; needed for non-monotone dependencies), tau")
	explain := fs.Bool("explain", false, "summarize enriched patterns among the returned records")
	timeout := fs.Duration("timeout", 0, "abort the drill-down after this duration (0 = no limit)")
	fs.Parse(args)

	rel, err := loadData(*data)
	if err != nil {
		return err
	}
	c, err := scoded.ParseSC(*expr)
	if err != nil {
		return err
	}
	var strat scoded.DrillStrategy
	switch strings.ToLower(*strategy) {
	case "", "best":
		strat = scoded.BestStrategy
	case "k":
		strat = scoded.KStrategy
	case "kc":
		strat = scoded.KcStrategy
	default:
		return fmt.Errorf("unknown strategy %q", *strategy)
	}
	var dm scoded.DrillMethod
	switch strings.ToLower(*method) {
	case "", "auto":
		dm = scoded.DrillAuto
	case "g":
		dm = scoded.DrillGMethod
	case "tau":
		dm = scoded.DrillTauMethod
	default:
		return fmt.Errorf("unknown drill method %q", *method)
	}
	ctx, cancel := engine.WithTimeout(ctx, *timeout)
	defer cancel()
	res, err := scoded.TopKContext(ctx, rel, c, *k, scoded.DrillOptions{Strategy: strat, Method: dm})
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "strategy: %s, statistic %.4g -> %.4g\n", res.Strategy, res.InitialStat, res.FinalStat)
	header := rel.Columns()
	fmt.Fprintf(out, "row  %s\n", strings.Join(header, ","))
	for _, r := range res.Rows {
		fmt.Fprintf(out, "%-4d %s\n", r, strings.Join(rel.Row(r), ","))
	}
	if *explain {
		findings, err := scoded.ExplainRows(rel, res.Rows, scoded.ExplainOptions{MaxP: 0.05})
		if err != nil {
			return err
		}
		if len(findings) == 0 {
			fmt.Fprintln(out, "no enriched patterns at p <= 0.05")
		}
		for _, f := range findings {
			fmt.Fprintln(out, "pattern:", f)
		}
	}
	return nil
}

func runPartition(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("partition", flag.ExitOnError)
	data := fs.String("data", "", "CSV file with a header row")
	expr := fs.String("sc", "", "constraint")
	alpha := fs.Float64("alpha", 0.05, "false dependence rate")
	maxRemove := fs.Int("max", 0, "maximum removals (0 = up to half the data)")
	fs.Parse(args)

	rel, err := loadData(*data)
	if err != nil {
		return err
	}
	c, err := scoded.ParseSC(*expr)
	if err != nil {
		return err
	}
	res, err := scoded.Partition(rel, scoded.ApproximateSC{SC: c, Alpha: *alpha}, scoded.DrillOptions{}, *maxRemove)
	if err != nil {
		return err
	}
	if res.Resolved {
		fmt.Fprintf(out, "resolved by removing %d records (final p=%.4g)\n", len(res.Removed), res.FinalP)
	} else {
		fmt.Fprintf(out, "NOT resolved within budget; removed %d records (final p=%.4g)\n", len(res.Removed), res.FinalP)
	}
	for _, r := range res.Removed {
		fmt.Fprintf(out, "%-4d %s\n", r, strings.Join(rel.Row(r), ","))
	}
	return nil
}

func runProfile(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("profile", flag.ExitOnError)
	data := fs.String("data", "", "CSV file with a header row")
	cols := fs.String("cols", "", "comma-separated columns (default: all)")
	indep := fs.Float64("indep", 0.05, "suggest an ISC at or below this association")
	dep := fs.Float64("dep", 0.5, "suggest a DSC at or above this association")
	fs.Parse(args)

	rel, err := loadData(*data)
	if err != nil {
		return err
	}
	names := rel.Columns()
	if *cols != "" {
		names = strings.Split(*cols, ",")
	}
	m, err := scoded.Profile(rel, names, 4)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "%-12s", "")
	for _, c := range m.Cols {
		fmt.Fprintf(out, " %-10s", c)
	}
	fmt.Fprintln(out)
	for i, c := range m.Cols {
		fmt.Fprintf(out, "%-12s", c)
		for j := range m.Cols {
			fmt.Fprintf(out, " %-10.3f", m.Values[i][j])
		}
		fmt.Fprintln(out)
	}
	for _, s := range scoded.SuggestSCs(m, *indep, *dep) {
		fmt.Fprintf(out, "suggest: %-30s (association %.3f)\n", s.SC, s.Strength)
	}
	return nil
}

type scList []string

func (s *scList) String() string     { return strings.Join(*s, "; ") }
func (s *scList) Set(v string) error { *s = append(*s, v); return nil }

func runConsistency(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("consistency", flag.ExitOnError)
	var exprs scList
	fs.Var(&exprs, "sc", "constraint (repeatable)")
	fs.Parse(args)

	if len(exprs) == 0 {
		return fmt.Errorf("no -sc flags given")
	}
	var cs []scoded.SC
	for _, e := range exprs {
		c, err := scoded.ParseSC(e)
		if err != nil {
			return err
		}
		cs = append(cs, c)
	}
	conflicts, err := scoded.CheckConsistency(cs)
	if err != nil {
		return err
	}
	if len(conflicts) == 0 {
		fmt.Fprintln(out, "consistent (no semi-graphoid contradiction derivable)")
		return nil
	}
	for _, c := range conflicts {
		fmt.Fprintln(out, "conflict:", c)
	}
	return fmt.Errorf("%d conflict(s) found", len(conflicts))
}
