// Command scoded-gen writes the six synthetic evaluation datasets (the
// DESIGN.md §2 substitutes for SENSOR, HOSP, HOCKEY, CAR, BOSTON, NEBRASKA)
// as CSV files, together with a parallel <name>.truth.csv marking the
// planted errors where the generator plants them. The files feed the
// cmd/scoded workflow and external tools.
//
// Usage:
//
//	scoded-gen -out ./data           # all datasets, default sizes
//	scoded-gen -out ./data -only hosp -seed 7
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"

	"scoded/internal/datasets"
	"scoded/internal/relation"
)

func main() {
	out := flag.String("out", ".", "output directory")
	only := flag.String("only", "", "generate a single dataset: sensor, hosp, hockey, car, boston, nebraska")
	seed := flag.Int64("seed", 1, "generator seed")
	flag.Parse()

	if err := os.MkdirAll(*out, 0o755); err != nil {
		fail(err)
	}
	type gen struct {
		name string
		run  func() (*relation.Relation, []bool)
	}
	gens := []gen{
		{"sensor", func() (*relation.Relation, []bool) {
			d := datasets.Sensor(datasets.SensorOptions{Seed: *seed})
			return d.Rel, d.Truth
		}},
		{"hosp", func() (*relation.Relation, []bool) {
			d := datasets.Hosp(datasets.HospOptions{Seed: *seed})
			return d.Rel, d.Truth
		}},
		{"hockey", func() (*relation.Relation, []bool) {
			d := datasets.Hockey(datasets.HockeyOptions{Seed: *seed})
			return d.Rel, d.Truth
		}},
		{"car", func() (*relation.Relation, []bool) {
			return datasets.Car(datasets.CarOptions{Seed: *seed}), nil
		}},
		{"boston", func() (*relation.Relation, []bool) {
			return datasets.Boston(datasets.BostonOptions{Seed: *seed}), nil
		}},
		{"nebraska", func() (*relation.Relation, []bool) {
			d := datasets.Nebraska(datasets.NebraskaOptions{Seed: *seed})
			return d.Rel, d.Truth
		}},
	}

	ran := 0
	for _, g := range gens {
		if *only != "" && g.name != *only {
			continue
		}
		rel, truth := g.run()
		path := filepath.Join(*out, g.name+".csv")
		if err := rel.WriteCSVFile(path); err != nil {
			fail(err)
		}
		fmt.Printf("wrote %s (%d rows)\n", path, rel.NumRows())
		if truth != nil {
			tpath := filepath.Join(*out, g.name+".truth.csv")
			if err := writeTruth(tpath, truth); err != nil {
				fail(err)
			}
			n := 0
			for _, t := range truth {
				if t {
					n++
				}
			}
			fmt.Printf("wrote %s (%d planted errors)\n", tpath, n)
		}
		ran++
	}
	if ran == 0 {
		fail(fmt.Errorf("no dataset matches %q", *only))
	}
}

func writeTruth(path string, truth []bool) error {
	vals := make([]string, len(truth))
	for i, t := range truth {
		vals[i] = strconv.FormatBool(t)
	}
	rel, err := relation.New(relation.NewCategoricalColumn("is_error", vals))
	if err != nil {
		return err
	}
	return rel.WriteCSVFile(path)
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "scoded-gen:", err)
	os.Exit(1)
}
