// Command scoded-smoke is the restart-durability smoke test for
// scoded-serve's -data-dir mode. It drives a real server binary through
// the full durability contract:
//
//  1. start scoded-serve with a fresh temporary -data-dir
//  2. upload the hockey dataset, append a second batch (two segments),
//     register constraints, and arm a dataset-bound monitor with a few
//     observations
//  3. capture /v1/checkall and /v1/monitors byte-for-byte
//  4. stop the server with SIGTERM and start a new process on the same
//     directory
//  5. assert the restarted server answers /v1/checkall and /v1/monitors
//     with byte-identical responses — the store-materialized relation,
//     re-parsed constraints and re-armed monitor are indistinguishable
//     from the pre-restart in-memory state
//
// Usage:
//
//	scoded-smoke -serve ./bin/scoded-serve [-players 600] [-timeout 2m]
//
// It exits 0 and prints "restart durability smoke: PASS" on success.
package main

import (
	"bytes"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/exec"
	"strings"
	"syscall"
	"time"

	"scoded/internal/datasets"
	"scoded/internal/relation"
)

func main() {
	serveBin := flag.String("serve", "", "path to the scoded-serve binary")
	players := flag.Int("players", 600, "hockey dataset size (pre-append)")
	timeout := flag.Duration("timeout", 2*time.Minute, "overall smoke budget")
	flag.Parse()
	if *serveBin == "" {
		fmt.Fprintln(os.Stderr, "scoded-smoke: missing -serve flag")
		os.Exit(2)
	}
	if err := run(*serveBin, *players, *timeout); err != nil {
		fmt.Fprintln(os.Stderr, "scoded-smoke:", err)
		os.Exit(1)
	}
	fmt.Println("restart durability smoke: PASS")
}

func run(serveBin string, players int, budget time.Duration) error {
	deadline := time.Now().Add(budget)
	dir, err := os.MkdirTemp("", "scoded-smoke-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	addr, err := freeAddr()
	if err != nil {
		return err
	}
	base := "http://" + addr

	// Phase 1: a fresh server accumulates durable state.
	srv, err := startServe(serveBin, dir, addr, deadline)
	if err != nil {
		return err
	}
	defer srv.kill()

	dirty := datasets.Hockey(datasets.HockeyOptions{Players: players, Seed: 7})
	head, tail, err := splitCSV(dirty.Rel, players-players/4)
	if err != nil {
		return err
	}
	if _, err := request("POST", base+"/v1/datasets?name=hockey", "text/csv", head, http.StatusCreated); err != nil {
		return fmt.Errorf("uploading hockey: %w", err)
	}
	if _, err := request("POST", base+"/v1/datasets/hockey/rows", "text/csv", tail, http.StatusOK); err != nil {
		return fmt.Errorf("appending hockey rows: %w", err)
	}
	for _, c := range []string{
		"GPM _||_ Games | DraftYear @ 0.05",
		"GPM _||_ DraftYear @ 0.05",
	} {
		body := fmt.Sprintf(`{"constraint": %q}`, c)
		if _, err := request("POST", base+"/v1/constraints", "application/json", []byte(body), http.StatusCreated); err != nil {
			return fmt.Errorf("adding constraint %q: %w", c, err)
		}
	}
	monReq := `{"kind": "numeric", "alpha": 0.05, "window": 64, "dataset": "hockey"}`
	if _, err := request("POST", base+"/v1/monitors", "application/json", []byte(monReq), http.StatusCreated); err != nil {
		return fmt.Errorf("creating monitor: %w", err)
	}
	obs := observationJSON(dirty.Rel, 48)
	if _, err := request("POST", base+"/v1/monitors/1/observe", "application/json", obs, http.StatusOK); err != nil {
		return fmt.Errorf("observing: %w", err)
	}

	checkReq := []byte(`{"dataset": "hockey", "workers": 1}`)
	before, err := request("POST", base+"/v1/checkall", "application/json", checkReq, http.StatusOK)
	if err != nil {
		return fmt.Errorf("checkall before restart: %w", err)
	}
	monBefore, err := request("GET", base+"/v1/monitors", "", nil, http.StatusOK)
	if err != nil {
		return fmt.Errorf("monitor list before restart: %w", err)
	}

	// Phase 2: SIGTERM, then a brand-new process on the same directory.
	if err := srv.stop(); err != nil {
		return fmt.Errorf("stopping server: %w", err)
	}
	srv, err = startServe(serveBin, dir, addr, deadline)
	if err != nil {
		return fmt.Errorf("restarting server: %w", err)
	}
	defer srv.kill()

	after, err := request("POST", base+"/v1/checkall", "application/json", checkReq, http.StatusOK)
	if err != nil {
		return fmt.Errorf("checkall after restart: %w", err)
	}
	if !bytes.Equal(before, after) {
		return fmt.Errorf("checkall diverged across restart:\nbefore: %s\nafter:  %s", before, after)
	}
	monAfter, err := request("GET", base+"/v1/monitors", "", nil, http.StatusOK)
	if err != nil {
		return fmt.Errorf("monitor list after restart: %w", err)
	}
	if !bytes.Equal(monBefore, monAfter) {
		return fmt.Errorf("monitors diverged across restart:\nbefore: %s\nafter:  %s", monBefore, monAfter)
	}
	if !bytes.Contains(monAfter, []byte(`"observed":48`)) {
		return fmt.Errorf("monitor not re-armed after restart: %s", monAfter)
	}
	if _, err := request("GET", base+"/v1/monitors/1/verdict", "", nil, http.StatusOK); err != nil {
		return fmt.Errorf("verdict after restart: %w", err)
	}
	return srv.stop()
}

// serveProc is one scoded-serve process under test.
type serveProc struct{ cmd *exec.Cmd }

func startServe(bin, dir, addr string, deadline time.Time) (*serveProc, error) {
	cmd := exec.Command(bin, "-addr", addr, "-data-dir", dir)
	cmd.Stdout = os.Stderr
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		return nil, err
	}
	p := &serveProc{cmd: cmd}
	for {
		resp, err := http.Get("http://" + addr + "/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return p, nil
			}
		}
		if time.Now().After(deadline) {
			p.kill()
			return nil, fmt.Errorf("server on %s did not become ready", addr)
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// stop terminates the server the way an orchestrator would — SIGTERM and a
// graceful drain — and waits for the process to exit so the listen address
// is free for the successor.
func (p *serveProc) stop() error {
	if err := p.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		return err
	}
	// scoded-serve exits 0 after a clean drain.
	return p.cmd.Wait()
}

func (p *serveProc) kill() {
	if p.cmd.ProcessState == nil {
		p.cmd.Process.Kill()
		p.cmd.Wait()
	}
}

func freeAddr() (string, error) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", err
	}
	addr := l.Addr().String()
	l.Close()
	return addr, nil
}

func request(method, url, contentType string, body []byte, want int) ([]byte, error) {
	req, err := http.NewRequest(method, url, bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	if contentType != "" {
		req.Header.Set("Content-Type", contentType)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != want {
		return nil, fmt.Errorf("%s %s: status %d (want %d): %s", method, url, resp.StatusCode, want, data)
	}
	return data, nil
}

// splitCSV renders the relation as two CSV documents: rows [0, cut) with
// the header, and rows [cut, n) with the header (the append endpoint
// requires one).
func splitCSV(rel *relation.Relation, cut int) (head, tail []byte, err error) {
	var full bytes.Buffer
	if err := rel.WriteCSV(&full); err != nil {
		return nil, nil, err
	}
	lines := strings.SplitAfter(full.String(), "\n")
	header := lines[0]
	if cut < 0 || cut+1 > len(lines) {
		return nil, nil, fmt.Errorf("split point %d out of range", cut)
	}
	head = []byte(header + strings.Join(lines[1:cut+1], ""))
	tail = []byte(header + strings.Join(lines[cut+1:], ""))
	return head, tail, nil
}

// observationJSON builds an observe batch from the first n (GPM, Games)
// pairs of the generated dataset.
func observationJSON(rel *relation.Relation, n int) []byte {
	gpm := rel.MustColumn("GPM").Floats()
	games := rel.MustColumn("Games").Floats()
	var b bytes.Buffer
	b.WriteString(`{"x": [`)
	for i := 0; i < n; i++ {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%g", gpm[i])
	}
	b.WriteString(`], "y": [`)
	for i := 0; i < n; i++ {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%g", games[i])
	}
	b.WriteString(`]}`)
	return b.Bytes()
}
