// Command scoded-smoke drives a real scoded-serve binary through one of
// two end-to-end contracts, selected by -mode.
//
// -mode restart (the default) is the restart-durability smoke for
// -data-dir:
//
//  1. start scoded-serve with a fresh temporary -data-dir
//  2. upload the hockey dataset, append a second batch (two segments),
//     register constraints, and arm a dataset-bound monitor with a few
//     observations
//  3. capture /v1/checkall and /v1/monitors byte-for-byte
//  4. stop the server with SIGTERM and start a new process on the same
//     directory
//  5. assert the restarted server answers /v1/checkall and /v1/monitors
//     with byte-identical responses — the store-materialized relation,
//     re-parsed constraints and re-armed monitor are indistinguishable
//     from the pre-restart in-memory state
//
// -mode oocore is the out-of-core detection smoke (DESIGN.md section 16):
// phase 1 builds the same durable dataset on an unconstrained server and
// captures /v1/checkall from the resident path; phase 2 restarts on the
// same directory with GOMEMLIMIT set and -resident-bytes 1 — a budget no
// dataset fits under — plus a small -scan-window-rows, and asserts the
// answer is byte-identical while /metrics proves no relation was ever
// materialized (scoded_resident_bytes and scoded_resident_misses_total
// both stay 0): the whole family was answered by segment-streamed
// sufficient statistics.
//
// Usage:
//
//	scoded-smoke -serve ./bin/scoded-serve [-mode restart|oocore]
//	             [-players 600] [-timeout 2m]
//
// It exits 0 and prints "<mode> smoke: PASS" on success.
package main

import (
	"bytes"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/exec"
	"strings"
	"syscall"
	"time"

	"scoded/internal/datasets"
	"scoded/internal/relation"
)

func main() {
	serveBin := flag.String("serve", "", "path to the scoded-serve binary")
	mode := flag.String("mode", "restart", "smoke to run: restart (durability) or oocore (out-of-core detection)")
	players := flag.Int("players", 600, "hockey dataset size (pre-append)")
	timeout := flag.Duration("timeout", 2*time.Minute, "overall smoke budget")
	flag.Parse()
	if *serveBin == "" {
		fmt.Fprintln(os.Stderr, "scoded-smoke: missing -serve flag")
		os.Exit(2)
	}
	var err error
	switch *mode {
	case "restart":
		err = run(*serveBin, *players, *timeout)
	case "oocore":
		err = runOocore(*serveBin, *players, *timeout)
	default:
		fmt.Fprintf(os.Stderr, "scoded-smoke: unknown -mode %q (want restart or oocore)\n", *mode)
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "scoded-smoke:", err)
		os.Exit(1)
	}
	switch *mode {
	case "restart":
		fmt.Println("restart durability smoke: PASS")
	case "oocore":
		fmt.Println("out-of-core detection smoke: PASS")
	}
}

func run(serveBin string, players int, budget time.Duration) error {
	deadline := time.Now().Add(budget)
	dir, err := os.MkdirTemp("", "scoded-smoke-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	addr, err := freeAddr()
	if err != nil {
		return err
	}
	base := "http://" + addr

	// Phase 1: a fresh server accumulates durable state.
	srv, err := startServe(serveBin, dir, addr, deadline, nil, nil)
	if err != nil {
		return err
	}
	defer srv.kill()

	dirty := datasets.Hockey(datasets.HockeyOptions{Players: players, Seed: 7})
	head, tail, err := splitCSV(dirty.Rel, players-players/4)
	if err != nil {
		return err
	}
	if _, err := request("POST", base+"/v1/datasets?name=hockey", "text/csv", head, http.StatusCreated); err != nil {
		return fmt.Errorf("uploading hockey: %w", err)
	}
	if _, err := request("POST", base+"/v1/datasets/hockey/rows", "text/csv", tail, http.StatusOK); err != nil {
		return fmt.Errorf("appending hockey rows: %w", err)
	}
	for _, c := range []string{
		"GPM _||_ Games | DraftYear @ 0.05",
		"GPM _||_ DraftYear @ 0.05",
	} {
		body := fmt.Sprintf(`{"constraint": %q}`, c)
		if _, err := request("POST", base+"/v1/constraints", "application/json", []byte(body), http.StatusCreated); err != nil {
			return fmt.Errorf("adding constraint %q: %w", c, err)
		}
	}
	monReq := `{"kind": "numeric", "alpha": 0.05, "window": 64, "dataset": "hockey"}`
	if _, err := request("POST", base+"/v1/monitors", "application/json", []byte(monReq), http.StatusCreated); err != nil {
		return fmt.Errorf("creating monitor: %w", err)
	}
	obs := observationJSON(dirty.Rel, 48)
	if _, err := request("POST", base+"/v1/monitors/1/observe", "application/json", obs, http.StatusOK); err != nil {
		return fmt.Errorf("observing: %w", err)
	}

	checkReq := []byte(`{"dataset": "hockey", "workers": 1}`)
	before, err := request("POST", base+"/v1/checkall", "application/json", checkReq, http.StatusOK)
	if err != nil {
		return fmt.Errorf("checkall before restart: %w", err)
	}
	monBefore, err := request("GET", base+"/v1/monitors", "", nil, http.StatusOK)
	if err != nil {
		return fmt.Errorf("monitor list before restart: %w", err)
	}

	// Phase 2: SIGTERM, then a brand-new process on the same directory.
	if err := srv.stop(); err != nil {
		return fmt.Errorf("stopping server: %w", err)
	}
	srv, err = startServe(serveBin, dir, addr, deadline, nil, nil)
	if err != nil {
		return fmt.Errorf("restarting server: %w", err)
	}
	defer srv.kill()

	after, err := request("POST", base+"/v1/checkall", "application/json", checkReq, http.StatusOK)
	if err != nil {
		return fmt.Errorf("checkall after restart: %w", err)
	}
	if !bytes.Equal(before, after) {
		return fmt.Errorf("checkall diverged across restart:\nbefore: %s\nafter:  %s", before, after)
	}
	monAfter, err := request("GET", base+"/v1/monitors", "", nil, http.StatusOK)
	if err != nil {
		return fmt.Errorf("monitor list after restart: %w", err)
	}
	if !bytes.Equal(monBefore, monAfter) {
		return fmt.Errorf("monitors diverged across restart:\nbefore: %s\nafter:  %s", monBefore, monAfter)
	}
	if !bytes.Contains(monAfter, []byte(`"observed":48`)) {
		return fmt.Errorf("monitor not re-armed after restart: %s", monAfter)
	}
	if _, err := request("GET", base+"/v1/monitors/1/verdict", "", nil, http.StatusOK); err != nil {
		return fmt.Errorf("verdict after restart: %w", err)
	}
	return srv.stop()
}

// runOocore is the out-of-core detection smoke: the answer a byte-budgeted
// restart gives must be the resident answer, computed without ever
// materializing the relation.
func runOocore(serveBin string, players int, budget time.Duration) error {
	deadline := time.Now().Add(budget)
	dir, err := os.MkdirTemp("", "scoded-smoke-oocore-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	addr, err := freeAddr()
	if err != nil {
		return err
	}
	base := "http://" + addr

	// Phase 1: an unconstrained server builds the durable dataset and
	// answers the family from the resident path.
	srv, err := startServe(serveBin, dir, addr, deadline, nil, nil)
	if err != nil {
		return err
	}
	defer srv.kill()

	dirty := datasets.Hockey(datasets.HockeyOptions{Players: players, Seed: 7})
	head, tail, err := splitCSV(dirty.Rel, players-players/4)
	if err != nil {
		return err
	}
	if _, err := request("POST", base+"/v1/datasets?name=hockey", "text/csv", head, http.StatusCreated); err != nil {
		return fmt.Errorf("uploading hockey: %w", err)
	}
	if _, err := request("POST", base+"/v1/datasets/hockey/rows", "text/csv", tail, http.StatusOK); err != nil {
		return fmt.Errorf("appending hockey rows: %w", err)
	}
	for _, c := range []string{
		"GPM _||_ Games | DraftYear @ 0.05",
		"GPM _||_ DraftYear @ 0.05",
	} {
		body := fmt.Sprintf(`{"constraint": %q}`, c)
		if _, err := request("POST", base+"/v1/constraints", "application/json", []byte(body), http.StatusCreated); err != nil {
			return fmt.Errorf("adding constraint %q: %w", c, err)
		}
	}
	checkReq := []byte(`{"dataset": "hockey", "workers": 1}`)
	resident, err := request("POST", base+"/v1/checkall", "application/json", checkReq, http.StatusOK)
	if err != nil {
		return fmt.Errorf("resident checkall: %w", err)
	}
	if err := srv.stop(); err != nil {
		return fmt.Errorf("stopping unconstrained server: %w", err)
	}

	// Phase 2: same directory, but under a runtime memory limit and a
	// resident budget of one byte, so every checkall must stream.
	srv, err = startServe(serveBin, dir, addr, deadline,
		[]string{"-resident-bytes", "1", "-scan-window-rows", "64"},
		[]string{"GOMEMLIMIT=64MiB"})
	if err != nil {
		return fmt.Errorf("restarting with resident budget: %w", err)
	}
	defer srv.kill()

	streamed, err := request("POST", base+"/v1/checkall", "application/json", checkReq, http.StatusOK)
	if err != nil {
		return fmt.Errorf("streamed checkall: %w", err)
	}
	if !bytes.Equal(resident, streamed) {
		return fmt.Errorf("streamed checkall diverged from resident:\nresident: %s\nstreamed: %s", resident, streamed)
	}
	metrics, err := request("GET", base+"/metrics", "", nil, http.StatusOK)
	if err != nil {
		return fmt.Errorf("metrics after streamed checkall: %w", err)
	}
	// The proof the answer was computed out of core: no relation bytes are
	// resident and no store materialization (miss) ever ran.
	for _, gauge := range []string{
		"scoded_resident_bytes 0",
		"scoded_resident_misses_total 0",
		"scoded_resident_relations 0",
	} {
		if !containsMetric(metrics, gauge) {
			return fmt.Errorf("metrics missing %q after streamed checkall:\n%s", gauge, metrics)
		}
	}
	return srv.stop()
}

// containsMetric reports whether the plain-text metrics payload carries the
// exact "name value" line.
func containsMetric(metrics []byte, line string) bool {
	for _, l := range strings.Split(string(metrics), "\n") {
		if strings.TrimSpace(l) == line {
			return true
		}
	}
	return false
}

// serveProc is one scoded-serve process under test.
type serveProc struct{ cmd *exec.Cmd }

// startServe launches the binary on dir/addr plus any extra flags, with
// extraEnv appended to the inherited environment, and waits for /healthz.
func startServe(bin, dir, addr string, deadline time.Time, extraArgs, extraEnv []string) (*serveProc, error) {
	args := append([]string{"-addr", addr, "-data-dir", dir}, extraArgs...)
	cmd := exec.Command(bin, args...)
	if len(extraEnv) > 0 {
		cmd.Env = append(os.Environ(), extraEnv...)
	}
	cmd.Stdout = os.Stderr
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		return nil, err
	}
	p := &serveProc{cmd: cmd}
	for {
		resp, err := http.Get("http://" + addr + "/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return p, nil
			}
		}
		if time.Now().After(deadline) {
			p.kill()
			return nil, fmt.Errorf("server on %s did not become ready", addr)
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// stop terminates the server the way an orchestrator would — SIGTERM and a
// graceful drain — and waits for the process to exit so the listen address
// is free for the successor.
func (p *serveProc) stop() error {
	if err := p.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		return err
	}
	// scoded-serve exits 0 after a clean drain.
	return p.cmd.Wait()
}

func (p *serveProc) kill() {
	if p.cmd.ProcessState == nil {
		p.cmd.Process.Kill()
		p.cmd.Wait()
	}
}

func freeAddr() (string, error) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", err
	}
	addr := l.Addr().String()
	l.Close()
	return addr, nil
}

func request(method, url, contentType string, body []byte, want int) ([]byte, error) {
	req, err := http.NewRequest(method, url, bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	if contentType != "" {
		req.Header.Set("Content-Type", contentType)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != want {
		return nil, fmt.Errorf("%s %s: status %d (want %d): %s", method, url, resp.StatusCode, want, data)
	}
	return data, nil
}

// splitCSV renders the relation as two CSV documents: rows [0, cut) with
// the header, and rows [cut, n) with the header (the append endpoint
// requires one).
func splitCSV(rel *relation.Relation, cut int) (head, tail []byte, err error) {
	var full bytes.Buffer
	if err := rel.WriteCSV(&full); err != nil {
		return nil, nil, err
	}
	lines := strings.SplitAfter(full.String(), "\n")
	header := lines[0]
	if cut < 0 || cut+1 > len(lines) {
		return nil, nil, fmt.Errorf("split point %d out of range", cut)
	}
	head = []byte(header + strings.Join(lines[1:cut+1], ""))
	tail = []byte(header + strings.Join(lines[cut+1:], ""))
	return head, tail, nil
}

// observationJSON builds an observe batch from the first n (GPM, Games)
// pairs of the generated dataset.
func observationJSON(rel *relation.Relation, n int) []byte {
	gpm := rel.MustColumn("GPM").Floats()
	games := rel.MustColumn("Games").Floats()
	var b bytes.Buffer
	b.WriteString(`{"x": [`)
	for i := 0; i < n; i++ {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%g", gpm[i])
	}
	b.WriteString(`], "y": [`)
	for i := 0; i < n; i++ {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%g", games[i])
	}
	b.WriteString(`]}`)
	return b.Bytes()
}
