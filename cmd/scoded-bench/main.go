// Command scoded-bench regenerates every table and figure of the paper's
// evaluation (Section 6) plus the Section 2 theory artifacts, printing
// paper-style tables and series. Each experiment is deterministic for a
// given seed; EXPERIMENTS.md records the paper-vs-measured comparison.
//
// Usage:
//
//	scoded-bench                 # run everything
//	scoded-bench -only F12       # run one experiment (F1, T2, F7, F8, F9,
//	                             # F10, F11, F10c, F12, F13, F14)
//	scoded-bench -seed 7         # change the dataset seed
//	scoded-bench -json           # run the kernel-cache CheckAll benchmark
//	                             # and write BENCH_detect.json
//	scoded-bench -json -out -    # ... printing the JSON to stdout instead
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"scoded/internal/detectbench"
	"scoded/internal/experiments"
)

type runner struct {
	id  string
	run func(seed int64) (*experiments.Report, error)
}

func main() {
	only := flag.String("only", "", "run a single experiment by id (e.g. F12)")
	seed := flag.Int64("seed", 1, "dataset seed")
	jsonMode := flag.Bool("json", false, "run the kernel-cache CheckAll benchmark and emit machine-readable JSON")
	out := flag.String("out", "BENCH_detect.json", "output path for -json ('-' for stdout)")
	workers := flag.Int("workers", 0, "CheckAll worker pool size for -json (0 = GOMAXPROCS)")
	flag.Parse()

	if *jsonMode {
		if err := runJSONBench(*seed, *workers, *out); err != nil {
			fmt.Fprintf(os.Stderr, "scoded-bench: %v\n", err)
			os.Exit(1)
		}
		return
	}

	runners := []runner{
		{"F1", experiments.Figure1},
		{"T2", func(int64) (*experiments.Report, error) { return experiments.Table2() }},
		{"F7", experiments.Figure7},
		{"F8", experiments.Figure8},
		{"F9", experiments.Figure9},
		{"F10", experiments.Figure10},
		{"F10r", experiments.Figure10Rates},
		{"F11", experiments.Figure11},
		{"F10c", experiments.FigureConditional},
		{"F12", experiments.Figure12},
		{"F13", experiments.Figure13},
		{"F14", experiments.Figure14},
		{"ABL", experiments.Ablation},
	}

	ran := 0
	for _, r := range runners {
		if *only != "" && r.id != *only {
			continue
		}
		start := time.Now()
		rep, err := r.run(*seed)
		if err != nil {
			fmt.Fprintf(os.Stderr, "scoded-bench: %s: %v\n", r.id, err)
			os.Exit(1)
		}
		fmt.Println(rep)
		fmt.Printf("(%s completed in %v)\n\n", r.id, time.Since(start).Round(time.Millisecond))
		ran++
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "scoded-bench: no experiment matches %q\n", *only)
		os.Exit(2)
	}
}

// runJSONBench measures the shared-statistic kernel workload (cold vs
// fresh-cache vs warm-cache CheckAll) and writes the report as JSON.
func runJSONBench(seed int64, workers int, out string) error {
	start := time.Now()
	rep := detectbench.Bench(seed, workers)
	b, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	b = append(b, '\n')
	if out == "-" {
		_, err = os.Stdout.Write(b)
		return err
	}
	if err := os.WriteFile(out, b, 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s: %.2fx fresh-cache, %.2fx warm-cache speedup over uncached (%d constraints, %d rows, measured in %v)\n",
		out, rep.SpeedupFreshVsCold, rep.SpeedupWarmVsCold,
		rep.Constraints, rep.Rows, time.Since(start).Round(time.Millisecond))
	return nil
}
