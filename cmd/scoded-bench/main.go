// Command scoded-bench regenerates every table and figure of the paper's
// evaluation (Section 6) plus the Section 2 theory artifacts, printing
// paper-style tables and series. Each experiment is deterministic for a
// given seed; EXPERIMENTS.md records the paper-vs-measured comparison.
//
// Usage:
//
//	scoded-bench                 # run everything
//	scoded-bench -only F12       # run one experiment (F1, T2, F7, F8, F9,
//	                             # F10, F11, F10c, F12, F13, F14)
//	scoded-bench -seed 7         # change the dataset seed
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"scoded/internal/experiments"
)

type runner struct {
	id  string
	run func(seed int64) (*experiments.Report, error)
}

func main() {
	only := flag.String("only", "", "run a single experiment by id (e.g. F12)")
	seed := flag.Int64("seed", 1, "dataset seed")
	flag.Parse()

	runners := []runner{
		{"F1", experiments.Figure1},
		{"T2", func(int64) (*experiments.Report, error) { return experiments.Table2() }},
		{"F7", experiments.Figure7},
		{"F8", experiments.Figure8},
		{"F9", experiments.Figure9},
		{"F10", experiments.Figure10},
		{"F10r", experiments.Figure10Rates},
		{"F11", experiments.Figure11},
		{"F10c", experiments.FigureConditional},
		{"F12", experiments.Figure12},
		{"F13", experiments.Figure13},
		{"F14", experiments.Figure14},
		{"ABL", experiments.Ablation},
	}

	ran := 0
	for _, r := range runners {
		if *only != "" && r.id != *only {
			continue
		}
		start := time.Now()
		rep, err := r.run(*seed)
		if err != nil {
			fmt.Fprintf(os.Stderr, "scoded-bench: %s: %v\n", r.id, err)
			os.Exit(1)
		}
		fmt.Println(rep)
		fmt.Printf("(%s completed in %v)\n\n", r.id, time.Since(start).Round(time.Millisecond))
		ran++
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "scoded-bench: no experiment matches %q\n", *only)
		os.Exit(2)
	}
}
