// Command scoded-bench regenerates every table and figure of the paper's
// evaluation (Section 6) plus the Section 2 theory artifacts, printing
// paper-style tables and series. Each experiment is deterministic for a
// given seed; EXPERIMENTS.md records the paper-vs-measured comparison.
//
// Usage:
//
//	scoded-bench                 # run everything
//	scoded-bench -only F12       # run one experiment (F1, T2, F7, F8, F9,
//	                             # F10, F11, F10c, F12, F13, F14)
//	scoded-bench -seed 7         # change the dataset seed
//	scoded-bench -json           # run the kernel-cache CheckAll benchmark
//	                             # and write BENCH_detect.json
//	scoded-bench -json -suite drilldown
//	                             # run the drill-down benchmark (linear vs
//	                             # delta argmax, sequential vs parallel
//	                             # MultiTopK) and write BENCH_drilldown.json
//	scoded-bench -json -suite stream
//	                             # run the streaming-ingest benchmark
//	                             # (incremental vs naive sliding-window
//	                             # kernels) and write BENCH_stream.json
//	scoded-bench -json -suite oocore
//	                             # run the out-of-core benchmark (resident
//	                             # vs materialize vs segment-streamed
//	                             # CheckAll) and write BENCH_oocore.json
//	scoded-bench -json -out -    # ... printing the JSON to stdout instead
//	scoded-bench -json -cpuprofile cpu.pprof -memprofile mem.pprof
//	                             # ... capturing pprof profiles of the run
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"time"

	"scoded/internal/detectbench"
	"scoded/internal/drillbench"
	"scoded/internal/experiments"
	"scoded/internal/oocorebench"
	"scoded/internal/streambench"
)

type runner struct {
	id  string
	run func(seed int64) (*experiments.Report, error)
}

func main() {
	only := flag.String("only", "", "run a single experiment by id (e.g. F12)")
	seed := flag.Int64("seed", 1, "dataset seed")
	jsonMode := flag.Bool("json", false, "run a machine-readable benchmark suite and emit JSON")
	suite := flag.String("suite", "detect", "benchmark suite for -json: detect (kernel-cache CheckAll), drilldown (linear vs delta-argmax drill), stream (incremental vs naive sliding-window kernels) or oocore (resident vs materialize vs segment-streamed CheckAll)")
	out := flag.String("out", "", "output path for -json ('-' for stdout; default BENCH_<suite>.json)")
	workers := flag.Int("workers", 0, "worker pool size for -json suites (0 = GOMAXPROCS)")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile of the run to this file")
	memprofile := flag.String("memprofile", "", "write an allocation profile of the run to this file")
	flag.Parse()

	stopProfiles, err := startProfiles(*cpuprofile, *memprofile)
	if err != nil {
		fmt.Fprintf(os.Stderr, "scoded-bench: %v\n", err)
		os.Exit(1)
	}
	defer stopProfiles()

	if *jsonMode {
		if err := runJSONBench(*suite, *seed, *workers, *out); err != nil {
			stopProfiles()
			fmt.Fprintf(os.Stderr, "scoded-bench: %v\n", err)
			os.Exit(1)
		}
		stopProfiles()
		return
	}

	runners := []runner{
		{"F1", experiments.Figure1},
		{"T2", func(int64) (*experiments.Report, error) { return experiments.Table2() }},
		{"F7", experiments.Figure7},
		{"F8", experiments.Figure8},
		{"F9", experiments.Figure9},
		{"F10", experiments.Figure10},
		{"F10r", experiments.Figure10Rates},
		{"F11", experiments.Figure11},
		{"F10c", experiments.FigureConditional},
		{"F12", experiments.Figure12},
		{"F13", experiments.Figure13},
		{"F14", experiments.Figure14},
		{"ABL", experiments.Ablation},
	}

	ran := 0
	for _, r := range runners {
		if *only != "" && r.id != *only {
			continue
		}
		start := time.Now()
		rep, err := r.run(*seed)
		if err != nil {
			fmt.Fprintf(os.Stderr, "scoded-bench: %s: %v\n", r.id, err)
			os.Exit(1)
		}
		fmt.Println(rep)
		fmt.Printf("(%s completed in %v)\n\n", r.id, time.Since(start).Round(time.Millisecond))
		ran++
	}
	if ran == 0 {
		stopProfiles()
		fmt.Fprintf(os.Stderr, "scoded-bench: no experiment matches %q\n", *only)
		os.Exit(2)
	}
}

// startProfiles begins CPU profiling and arranges for the allocation
// profile snapshot, returning an idempotent stop function that flushes
// both. Empty paths disable the corresponding profile.
func startProfiles(cpuPath, memPath string) (func(), error) {
	var cpuFile *os.File
	if cpuPath != "" {
		f, err := os.Create(cpuPath)
		if err != nil {
			return nil, fmt.Errorf("-cpuprofile: %w", err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			closeDiscard(f)
			return nil, fmt.Errorf("-cpuprofile: %w", err)
		}
		cpuFile = f
	}
	stopped := false
	return func() {
		if stopped {
			return
		}
		stopped = true
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				fmt.Fprintf(os.Stderr, "scoded-bench: closing -cpuprofile: %v\n", err)
			}
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				fmt.Fprintf(os.Stderr, "scoded-bench: -memprofile: %v\n", err)
				return
			}
			runtime.GC() // settle live heap so the allocs profile is complete
			if err := pprof.Lookup("allocs").WriteTo(f, 0); err != nil {
				fmt.Fprintf(os.Stderr, "scoded-bench: -memprofile: %v\n", err)
			}
			if err := f.Close(); err != nil {
				fmt.Fprintf(os.Stderr, "scoded-bench: closing -memprofile: %v\n", err)
			}
		}
	}, nil
}

// closeDiscard closes a file whose contents are already known to be unusable.
func closeDiscard(f *os.File) {
	if err := f.Close(); err != nil {
		fmt.Fprintf(os.Stderr, "scoded-bench: %v\n", err)
	}
}

// runJSONBench measures one benchmark suite — "detect" (cold vs fresh-cache
// vs warm-cache CheckAll over the shared-statistic kernel), "drilldown"
// (seed-era linear greedy vs delta argmax, sequential vs parallel
// MultiTopK), "stream" (incremental vs naive sliding-window kernels) or
// "oocore" (resident vs materialize vs segment-streamed CheckAll) — and
// writes the report as JSON.
func runJSONBench(suite string, seed int64, workers int, out string) error {
	start := time.Now()
	var rep any
	var summary string
	switch suite {
	case "detect":
		if out == "" {
			out = "BENCH_detect.json"
		}
		r := detectbench.Bench(seed, workers)
		rep = r
		summary = fmt.Sprintf("%.2fx fresh-cache, %.2fx warm-cache, %.2fx after-append speedup over uncached (%d constraints, %d rows",
			r.SpeedupFreshVsCold, r.SpeedupWarmVsCold, r.SpeedupAppendVsCold, r.Constraints, r.Rows)
	case "drilldown":
		if out == "" {
			out = "BENCH_drilldown.json"
		}
		r := drillbench.Bench(seed, workers)
		rep = r
		summary = fmt.Sprintf("%.2fx tau K^c, %.2fx G K^c delta-argmax speedup, %.2fx MultiTopK fan-out (%d rows, %d strata",
			r.SpeedupTauKc, r.SpeedupGKc, r.SpeedupMulti, r.Rows, r.Strata)
	case "stream":
		if out == "" {
			out = "BENCH_stream.json"
		}
		r := streambench.Bench(seed, workers)
		rep = r
		summary = fmt.Sprintf("%.2fx numeric, %.2fx categorical incremental-vs-naive records/sec (window %d",
			r.SpeedupNumeric, r.SpeedupCategorical, r.Window)
	case "oocore":
		if out == "" {
			out = "BENCH_oocore.json"
		}
		r, err := oocorebench.Bench(seed, workers)
		if err != nil {
			return fmt.Errorf("oocore suite: %w", err)
		}
		rep = r
		summary = fmt.Sprintf("%.2fx stream-vs-resident time, %.2fx materialize-vs-stream-scan bytes (%d segments, %d rows",
			r.StreamOverheadVsResident, r.MaterializeBytesVsStreamScan, r.Segments, r.Rows)
	default:
		return fmt.Errorf("unknown -suite %q (want detect, drilldown, stream or oocore)", suite)
	}
	b, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	b = append(b, '\n')
	if out == "-" {
		_, err = os.Stdout.Write(b)
		return err
	}
	if err := os.WriteFile(out, b, 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s: %s, measured in %v)\n",
		out, summary, time.Since(start).Round(time.Millisecond))
	return nil
}
