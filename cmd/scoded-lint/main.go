// Command scoded-lint runs the SCODED-specific static analyzers over the
// module and reports vet-style diagnostics. It is the CI gate between
// `go vet` and the race tests (scripts/ci.sh):
//
//	scoded-lint ./...             # analyze every package, text output
//	scoded-lint -json ./...       # machine-readable findings
//	scoded-lint -analyzers floatcmp,resulterr ./internal/stats
//	scoded-lint -list             # describe the registered analyzers
//
// Exit status: 0 when clean, 1 when any diagnostic survives suppression,
// 2 on driver errors (unparseable or non-compiling sources, bad flags).
// Findings are suppressed line-by-line with a justified comment:
//
//	//scoded:lint-ignore <analyzer> <reason>
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"scoded/internal/lint"
)

func main() {
	os.Exit(run())
}

func run() int {
	fs := flag.NewFlagSet("scoded-lint", flag.ContinueOnError)
	jsonOut := fs.Bool("json", false, "emit findings as JSON")
	names := fs.String("analyzers", "", "comma-separated analyzer subset (default: all)")
	list := fs.Bool("list", false, "list the registered analyzers and exit")
	fs.Usage = func() {
		fmt.Fprintf(fs.Output(), "usage: scoded-lint [-json] [-analyzers a,b] [packages]\n\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(os.Args[1:]); err != nil {
		return 2
	}
	if *list {
		for _, a := range lint.Analyzers() {
			fmt.Printf("%-16s %s\n", a.Name, a.Doc)
		}
		return 0
	}

	cfg := lint.Config{Patterns: fs.Args()}
	if *names != "" {
		for _, n := range strings.Split(*names, ",") {
			if n = strings.TrimSpace(n); n != "" {
				cfg.Analyzers = append(cfg.Analyzers, n)
			}
		}
	}
	res, err := lint.Run(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	if *jsonOut {
		if err := lint.WriteJSON(os.Stdout, res); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 2
		}
	} else {
		lint.WriteText(os.Stdout, res)
	}
	if len(res.TypeErrors) > 0 {
		return 2
	}
	if len(res.Diagnostics) > 0 {
		return 1
	}
	return 0
}
