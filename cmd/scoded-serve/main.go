// Command scoded-serve runs SCODED as a long-lived HTTP detection service:
// dataset and constraint registries, check / checkall / drilldown
// endpoints, streaming monitors, and plain-text metrics. See the
// "Running the service" section of the README for the endpoint catalogue
// and curl examples.
//
// Usage:
//
//	scoded-serve [-addr :8080] [-data-dir /var/lib/scoded]
//	             [-load name=path.csv ...] [-workers N]
//	             [-request-timeout 30s] [-ingest-queue N]
//	             [-alert-webhook URL] [-alert-retries N]
//	             [-alert-backoff 100ms] [-resident-bytes N]
//	             [-scan-window-rows N]
//
// With -data-dir set, the service is durable: datasets, constraints and
// monitors are written through to an append-only columnar store under that
// directory and restored on boot, so a restart resumes exactly where the
// previous process stopped. A -load dataset whose name already exists in
// the store is skipped (the store's copy wins).
//
// Boot registers stored datasets from their manifests alone; rows load
// lazily on first touch. With -resident-bytes set, materialized relations
// are held under that byte budget by an LRU (unreferenced ones are evicted
// back to cold form), and a /v1/checkall against a dataset larger than the
// whole budget streams segment-at-a-time sufficient statistics — bounded
// further by -scan-window-rows — with bit-identical results.
//
// The process shuts down gracefully on SIGINT/SIGTERM, draining in-flight
// requests before exiting. With -request-timeout set, every request's
// context carries a server-side deadline: a check, drill-down or observe
// batch that outlives it is cancelled and answered 504.
//
// Streaming ingest (POST /v1/monitors/{id}/records) applies admission
// control: -ingest-queue bounds concurrent batches per monitor, and an
// over-limit request is refused with 429 + Retry-After instead of being
// buffered. When a monitor's verdict flips to violated, an alert is
// POSTed to its webhook (or the -alert-webhook fallback), retried
// -alert-retries times with doubling backoff from -alert-backoff.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"scoded/internal/relation"
	"scoded/internal/server"
	"scoded/internal/store"
)

// loadFlags collects repeatable -load name=path.csv flags.
type loadFlags []string

func (l *loadFlags) String() string { return strings.Join(*l, ",") }
func (l *loadFlags) Set(v string) error {
	*l = append(*l, v)
	return nil
}

func main() {
	fs := flag.NewFlagSet("scoded-serve", flag.ExitOnError)
	addr := fs.String("addr", ":8080", "listen address")
	workers := fs.Int("workers", 0, "checkall worker pool size (0 = GOMAXPROCS)")
	maxUpload := fs.Int64("max-upload", 32<<20, "maximum CSV upload size in bytes")
	shutdownTimeout := fs.Duration("shutdown-timeout", 10*time.Second, "graceful shutdown drain budget")
	requestTimeout := fs.Duration("request-timeout", 0, "server-side deadline per request; expired requests answer 504 (0 = none)")
	dataDir := fs.String("data-dir", "", "durable store directory; empty keeps all state in memory")
	ingestQueue := fs.Int("ingest-queue", 0, "record batches admitted per monitor before 429 backpressure (0 = 16)")
	alertWebhook := fs.String("alert-webhook", "", "fallback webhook URL POSTed when a monitor's verdict flips to violated")
	alertRetries := fs.Int("alert-retries", 0, "webhook delivery attempts per alert (0 = 3)")
	alertBackoff := fs.Duration("alert-backoff", 0, "initial webhook retry delay, doubled per attempt (0 = 100ms)")
	residentBytes := fs.Int64("resident-bytes", 0, "byte budget for materialized relations; larger store-backed datasets stream or are LRU-evicted (0 = unbounded)")
	scanWindowRows := fs.Int("scan-window-rows", 0, "rows decoded per chunk on the streaming detection path (0 = whole segments)")
	var loads loadFlags
	fs.Var(&loads, "load", "preload a dataset as name=path.csv (repeatable)")
	fs.Parse(os.Args[1:])

	var st *store.Store
	if *dataDir != "" {
		var err error
		st, err = store.Open(*dataDir)
		if err != nil {
			log.Fatalf("scoded-serve: opening store: %v", err)
		}
	}
	srv := server.New(server.Options{
		Workers:        *workers,
		MaxUploadBytes: *maxUpload,
		RequestTimeout: *requestTimeout,
		Store:          st,
		IngestQueue:    *ingestQueue,
		AlertWebhook:   *alertWebhook,
		AlertRetries:   *alertRetries,
		AlertBackoff:   *alertBackoff,
		ResidentBytes:  *residentBytes,
		ScanWindowRows: *scanWindowRows,
	})
	defer srv.Close()
	if st != nil {
		if err := srv.LoadStore(); err != nil {
			log.Fatalf("scoded-serve: restoring store: %v", err)
		}
		names, err := st.Datasets()
		if err != nil {
			log.Fatalf("scoded-serve: %v", err)
		}
		log.Printf("restored %d dataset(s) from %s", len(names), *dataDir)
	}
	for _, spec := range loads {
		name, path, ok := strings.Cut(spec, "=")
		if !ok {
			log.Fatalf("scoded-serve: -load %q: want name=path.csv", spec)
		}
		if st != nil && st.HasDataset(name) {
			log.Printf("dataset %q already in store; skipping -load %s", name, path)
			continue
		}
		rel, err := relation.ReadCSVFile(path)
		if err != nil {
			log.Fatalf("scoded-serve: loading %s: %v", path, err)
		}
		if err := srv.AddDataset(name, rel); err != nil {
			log.Fatalf("scoded-serve: %v", err)
		}
		log.Printf("loaded dataset %q: %d rows, %d columns", name, rel.NumRows(), rel.NumCols())
	}

	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errCh := make(chan error, 1)
	go func() {
		log.Printf("scoded-serve listening on %s", *addr)
		errCh <- httpSrv.ListenAndServe()
	}()

	select {
	case err := <-errCh:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Fatalf("scoded-serve: %v", err)
		}
	case <-ctx.Done():
		stop()
		log.Printf("scoded-serve: shutting down (draining for up to %s)", *shutdownTimeout)
		drainCtx, cancel := context.WithTimeout(context.Background(), *shutdownTimeout)
		defer cancel()
		if err := httpSrv.Shutdown(drainCtx); err != nil {
			fmt.Fprintf(os.Stderr, "scoded-serve: forced shutdown: %v\n", err)
			os.Exit(1)
		}
		srv.Close() // cancel and await in-flight webhook alerts
		log.Printf("scoded-serve: bye")
	}
}
