GO ?= go

.PHONY: build test race vet lint fmt fmt-check bench ci

build: ## compile the library and every binary
	$(GO) build ./...

test: ## run the full test suite
	$(GO) test ./...

race: ## run the full test suite under the race detector
	$(GO) test -race ./...

vet: ## static analysis
	$(GO) vet ./...

lint: ## SCODED-specific static analysis, all ten analyzers (DESIGN.md sections 8 and 13)
	$(GO) run ./cmd/scoded-lint ./...

fmt: ## rewrite sources with gofmt
	gofmt -w .

fmt-check: ## fail if any file needs gofmt
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

bench: ## regenerate BENCH_detect.json, BENCH_drilldown.json and BENCH_stream.json
	$(GO) run ./cmd/scoded-bench -json -suite detect
	$(GO) run ./cmd/scoded-bench -json -suite drilldown
	$(GO) run ./cmd/scoded-bench -json -suite stream

bench-all: ## run every Go benchmark in the repo
	$(GO) test -bench=. -benchmem ./...

ci: ## the full CI gate: fmt-check + vet + lint + race tests
	./scripts/ci.sh
