GO ?= go

.PHONY: build test race vet lint fmt fmt-check bench profile ci

build: ## compile the library and every binary
	$(GO) build ./...

test: ## run the full test suite
	$(GO) test ./...

race: ## run the full test suite under the race detector
	$(GO) test -race ./...

vet: ## static analysis
	$(GO) vet ./...

lint: ## SCODED-specific static analysis, all eleven analyzers (DESIGN.md sections 8, 13 and 15)
	$(GO) run ./cmd/scoded-lint ./...

fmt: ## rewrite sources with gofmt
	gofmt -w .

fmt-check: ## fail if any file needs gofmt
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

bench: ## regenerate BENCH_detect.json, BENCH_drilldown.json and BENCH_stream.json
	$(GO) run ./cmd/scoded-bench -json -suite detect
	$(GO) run ./cmd/scoded-bench -json -suite drilldown
	$(GO) run ./cmd/scoded-bench -json -suite stream

bench-all: ## run every Go benchmark in the repo
	$(GO) test -bench=. -benchmem ./...

PROFILE_DIR ?= profiles

profile: ## capture CPU + allocation profiles of the detect bench hot path (DESIGN.md section 15)
	mkdir -p $(PROFILE_DIR)
	$(GO) run ./cmd/scoded-bench -json -suite detect -out /dev/null \
		-cpuprofile $(PROFILE_DIR)/detect_cpu.pprof -memprofile $(PROFILE_DIR)/detect_mem.pprof
	@echo "wrote $(PROFILE_DIR)/detect_cpu.pprof and $(PROFILE_DIR)/detect_mem.pprof"
	@echo "inspect with: go tool pprof -top $(PROFILE_DIR)/detect_cpu.pprof"

ci: ## the full CI gate: fmt-check + vet + lint + race tests
	./scripts/ci.sh
