package scoded

import (
	"scoded/internal/server"
)

// Server is the scoded-serve HTTP detection service: dataset and
// constraint registries, check / checkall / drilldown endpoints, streaming
// monitors, and a plain-text /metrics endpoint, all behind a single
// http.Handler. Use it to embed the service in your own http.Server (the
// cmd/scoded-serve binary is a thin wrapper that adds flags and graceful
// shutdown):
//
//	srv := scoded.NewServer(scoded.ServerOptions{})
//	_ = srv.AddDataset("cars", rel)
//	log.Fatal(http.ListenAndServe(":8080", srv.Handler()))
type Server = server.Server

// ServerOptions configures NewServer; the zero value caps uploads at
// 32 MiB and sizes the checkall worker pool to GOMAXPROCS.
type ServerOptions = server.Options

// NewServer creates a detection service with empty registries. Register
// state over HTTP (POST /v1/datasets, POST /v1/constraints) or in-process
// via AddDataset / AddConstraint.
func NewServer(opts ServerOptions) *Server { return server.New(opts) }
