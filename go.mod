module scoded

go 1.22
