package scoded

import (
	"scoded/internal/repair"
	"scoded/internal/stream"
)

// This file exposes the two Section 8 future-work extensions the paper
// sketches: cell-level repair and incremental (online) constraint
// monitoring.

// CellCorrection is one proposed cell rewrite: row, column, old and new
// value, and the statistic gain attributed to it.
type CellCorrection = repair.Correction

// RepairOptions configures the repair search.
type RepairOptions = repair.Options

// RepairResult is the outcome of a repair search.
type RepairResult = repair.Result

// RepairTopKCells proposes the k cell-value corrections that move the
// constraint's statistic furthest towards satisfaction — the paper's
// Section 8 extension of drill-down from record labelling to cell repair.
// Categorical constraints use exact O(1) contingency-cell moves applied
// greedily; numeric constraints re-align corrected values to the rank
// structure the constraint demands.
func RepairTopKCells(d *Relation, c SC, k int, opts RepairOptions) (RepairResult, error) {
	return repair.TopKCells(d, c, k, opts)
}

// ApplyCorrections returns a copy of the relation with the corrections
// written in.
func ApplyCorrections(d *Relation, corrections []CellCorrection) (*Relation, error) {
	return repair.Apply(d, corrections)
}

// StreamVerdict is a monitor's current judgement of its constraint.
type StreamVerdict = stream.Verdict

// CategoricalMonitor maintains an SC between two categorical variables
// over a stream of insertions in O(1) per update, with optional
// sliding-window eviction — the paper's Section 8 "incremental on-line
// SCODED" direction.
type CategoricalMonitor = stream.CategoricalMonitor

// NumericMonitor maintains a Kendall-based SC between two numeric
// variables over a stream, with exact tie-corrected p-values, in
// amortized O(√(w log w)) per update via an incremental concordance
// index over the window.
type NumericMonitor = stream.NumericMonitor

// ConditionalMonitor stratifies a categorical monitor on a conditioning
// key and combines per-stratum evidence like the batch detector.
type ConditionalMonitor = stream.ConditionalMonitor

// NewCategoricalMonitor creates a streaming monitor for X ⊥ Y
// (dependence=false) or X ⊥̸ Y (dependence=true) at significance alpha;
// window > 0 bounds retained records with FIFO eviction.
func NewCategoricalMonitor(alpha float64, dependence bool, window int) (*CategoricalMonitor, error) {
	return stream.NewCategoricalMonitor(alpha, dependence, window)
}

// NewNumericMonitor creates a streaming monitor for a numeric pair; see
// NewCategoricalMonitor for the parameters.
func NewNumericMonitor(alpha float64, dependence bool, window int) (*NumericMonitor, error) {
	return stream.NewNumericMonitor(alpha, dependence, window)
}

// NewConditionalMonitor creates a per-stratum streaming monitor for
// X ⊥ Y | Z; strata smaller than minStratum are excluded from the combined
// verdict.
func NewConditionalMonitor(alpha float64, dependence bool, window, minStratum int) (*ConditionalMonitor, error) {
	return stream.NewConditionalMonitor(alpha, dependence, window, minStratum)
}

// ConditionalNumericMonitor stratifies a numeric monitor on a conditioning
// key, combining per-stratum Kendall evidence by the Stouffer rule.
type ConditionalNumericMonitor = stream.ConditionalNumericMonitor

// NewConditionalNumericMonitor creates a per-stratum numeric streaming
// monitor for X ⊥ Y | Z over float observations.
func NewConditionalNumericMonitor(alpha float64, dependence bool, window, minStratum int) (*ConditionalNumericMonitor, error) {
	return stream.NewConditionalNumericMonitor(alpha, dependence, window, minStratum)
}
